package adaptive

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestDatabaseGInitialSplits(t *testing.T) {
	d := NewDatabaseG(8, 1000, 0.889)
	for _, w := range []float64{1, 125, 500, 999, 5000} {
		if d.Lookup(w) != 0.889 {
			t.Fatalf("initial lookup(%v) = %v", w, d.Lookup(w))
		}
	}
}

func TestDatabaseGBucketing(t *testing.T) {
	d := NewDatabaseG(4, 400, 0.5)
	d.Store(150, 0.7) // bucket 1: (100, 200]
	if d.Lookup(101) != 0.7 || d.Lookup(199) != 0.7 {
		t.Fatal("stored value must cover its whole bucket")
	}
	if d.Lookup(99) != 0.5 || d.Lookup(201) != 0.5 {
		t.Fatal("neighboring buckets must be untouched")
	}
}

func TestDatabaseGOverflowUsesLastBucket(t *testing.T) {
	d := NewDatabaseG(4, 400, 0.5)
	d.Store(1e9, 0.9) // beyond maxWork: last bucket
	if d.Lookup(399) != 0.9 || d.Lookup(1e12) != 0.9 {
		t.Fatal("out-of-range workloads must map to the last bucket")
	}
}

func TestDatabaseGSnapshot(t *testing.T) {
	d := NewDatabaseG(4, 400, 0.5)
	d.Store(150, 0.7)
	s := d.Snapshot()
	if len(s) != 4 {
		t.Fatalf("snapshot length %d", len(s))
	}
	if s[1].Split != 0.7 || !s[1].Touched {
		t.Fatalf("bucket 1 = %+v", s[1])
	}
	if s[0].Touched || s[2].Touched {
		t.Fatal("untouched buckets must be marked as such")
	}
	if s[0].WorkLo != 0 || s[0].WorkHi != 100 || s[3].WorkHi != 400 {
		t.Fatalf("bucket bounds wrong: %+v", s)
	}
}

func TestDatabaseGJSONRoundTrip(t *testing.T) {
	d := NewDatabaseG(6, 600, 0.889)
	d.Store(50, 0.6)
	d.Store(550, 0.93)
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back DatabaseG
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Lookup(50) != 0.6 || back.Lookup(550) != 0.93 || back.Lookup(300) != 0.889 {
		t.Fatal("round trip lost data")
	}
	if back.Buckets() != 6 || back.MaxWork() != 600 {
		t.Fatal("round trip lost shape")
	}
}

func TestDatabaseGInvalidJSON(t *testing.T) {
	var d DatabaseG
	if err := json.Unmarshal([]byte(`{"max_work":0,"buckets":[],"touched":[]}`), &d); err == nil {
		t.Fatal("invalid serialization must be rejected")
	}
}

func TestDatabaseGValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewDatabaseG(0, 100, 0.5) },
		func() { NewDatabaseG(4, 0, 0.5) },
		func() { NewDatabaseC(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid construction should panic")
				}
			}()
			f()
		}()
	}
}

func TestDatabaseCInitialEqual(t *testing.T) {
	d := NewDatabaseC(3)
	for _, s := range d.Splits() {
		if math.Abs(s-1.0/3.0) > 1e-15 {
			t.Fatalf("initial split %v", s)
		}
	}
}

func TestDatabaseCUpdateFollowsRates(t *testing.T) {
	d := NewDatabaseC(3)
	// Equal work, but core 0 took twice as long: its rate is half.
	d.Update([]float64{100, 100, 100}, []float64{2, 1, 1})
	s := d.Splits()
	if math.Abs(s[0]-0.2) > 1e-12 || math.Abs(s[1]-0.4) > 1e-12 || math.Abs(s[2]-0.4) > 1e-12 {
		t.Fatalf("splits after update: %v", s)
	}
}

func TestDatabaseCSplitsSumToOne(t *testing.T) {
	d := NewDatabaseC(4)
	f := func(w0, w1, w2, w3, t0, t1, t2, t3 uint8) bool {
		works := []float64{float64(w0), float64(w1), float64(w2), float64(w3)}
		times := []float64{float64(t0) + 1, float64(t1) + 1, float64(t2) + 1, float64(t3) + 1}
		d.Update(works, times)
		var sum float64
		for _, s := range d.Splits() {
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDatabaseCUnmeasuredCoreKeepsShare(t *testing.T) {
	d := NewDatabaseC(2)
	d.Update([]float64{100, 100}, []float64{1, 2}) // splits -> 2/3, 1/3
	before := d.Splits()
	// Next execution core 1 got no work: its implied rate must be carried.
	d.Update([]float64{100, 0}, []float64{1, 0})
	after := d.Splits()
	if math.Abs(after[1]-before[1]) > 1e-9 {
		t.Fatalf("unmeasured core share drifted: %v -> %v", before, after)
	}
}

func TestDatabaseCAllUnmeasuredNoChange(t *testing.T) {
	d := NewDatabaseC(2)
	d.Update([]float64{10, 10}, []float64{1, 3})
	before := d.Splits()
	d.Update([]float64{0, 0}, []float64{0, 0})
	after := d.Splits()
	if before[0] != after[0] || before[1] != after[1] {
		t.Fatal("an empty observation must not change the database")
	}
}

func TestAdaptiveConvergesToTrueRatio(t *testing.T) {
	// Simulated element: GPU runs at 190 Gflop/s, CPU at 30 Gflop/s; the
	// optimal split is 190/220 = 0.8636. Starting from the peak ratio 0.889,
	// one observation already lands on the fixed point because the rates are
	// load-independent here.
	a := NewAdaptive(10, 1e12, 0.889, 3)
	work := 5e11
	for i := 0; i < 5; i++ {
		g := a.GSplit(work)
		tg := work * g / 190e9
		tc := work * (1 - g) / 30e9
		a.Observe(Observation{Work: work, GSplit: g, TG: tg, TC: tc})
	}
	want := 190.0 / 220.0
	if got := a.GSplit(work); math.Abs(got-want) > 1e-9 {
		t.Fatalf("converged split %v, want %v", got, want)
	}
}

func TestAdaptiveConvergenceIsPerBucket(t *testing.T) {
	// Small workloads see a slower GPU (efficiency curve): their bucket must
	// learn a lower split while big buckets stay near peak ratio.
	a := NewAdaptive(10, 1000, 0.889, 3)
	gpuRate := func(work float64) float64 { return 200 * work / (work + 500) }
	for _, work := range []float64{50, 950} {
		for i := 0; i < 20; i++ {
			g := a.GSplit(work)
			tg := work * g / gpuRate(work)
			tc := work * (1 - g) / 30
			a.Observe(Observation{Work: work, GSplit: g, TG: tg, TC: tc})
		}
	}
	small := a.GSplit(50)
	big := a.GSplit(950)
	if small >= big {
		t.Fatalf("small-workload split %v should be below big-workload split %v", small, big)
	}
	wantSmall := gpuRate(50) / (gpuRate(50) + 30)
	if math.Abs(small-wantSmall) > 1e-6 {
		t.Fatalf("small bucket %v, want %v", small, wantSmall)
	}
}

func TestAdaptiveIgnoresDegenerateObservations(t *testing.T) {
	a := NewAdaptive(4, 100, 0.8, 2)
	a.Observe(Observation{Work: 50, GSplit: 0.8, TG: 0, TC: 1})
	if a.GSplit(50) != 0.8 {
		t.Fatal("zero TG must not update the database")
	}
	a.Observe(Observation{Work: 0, GSplit: 0.8, TG: 1, TC: 1})
	if a.GSplit(50) != 0.8 {
		t.Fatal("zero work must not update the database")
	}
}

func TestAdaptiveClampsSplits(t *testing.T) {
	a := NewAdaptive(4, 100, 0.8, 2)
	// GPU immensely faster: unclamped update would be ~1.0.
	a.Observe(Observation{Work: 50, GSplit: 0.8, TG: 1e-12, TC: 1e6})
	if s := a.GSplit(50); s > maxGSplit {
		t.Fatalf("split %v exceeds clamp", s)
	}
	a.Observe(Observation{Work: 50, GSplit: 0.8, TG: 1e6, TC: 1e-12})
	if s := a.GSplit(50); s < minGSplit {
		t.Fatalf("split %v below clamp", s)
	}
}

func TestAdaptiveLevel2Update(t *testing.T) {
	a := NewAdaptive(4, 100, 0.8, 3)
	a.Observe(Observation{
		Work: 50, GSplit: 0.8, TG: 1, TC: 1,
		CoreWorks: []float64{10, 10, 10},
		CoreTimes: []float64{2, 1, 1},
	})
	s := a.CSplits()
	if !(s[0] < s[1] && math.Abs(s[1]-s[2]) < 1e-12) {
		t.Fatalf("level-2 splits %v", s)
	}
}

func TestStaticNeverChanges(t *testing.T) {
	s := NewStatic(0.889, 3)
	s.Observe(Observation{Work: 100, GSplit: 0.889, TG: 10, TC: 0.1,
		CoreWorks: []float64{1, 1, 1}, CoreTimes: []float64{9, 1, 1}})
	if s.GSplit(100) != 0.889 {
		t.Fatal("static split must not move")
	}
	cs := s.CSplits()
	if cs[0] != cs[1] || cs[1] != cs[2] {
		t.Fatal("static core splits must stay equal")
	}
}

func TestTrainedFreezes(t *testing.T) {
	tr := NewTrained(4, 100, 0.8, 2)
	obs := Observation{Work: 50, GSplit: 0.8, TG: 1, TC: 4}
	tr.Observe(obs) // training: updates
	trained := tr.GSplit(50)
	if trained == 0.8 {
		t.Fatal("training observation must update the split")
	}
	tr.Freeze()
	if tr.Training() {
		t.Fatal("Freeze must end training")
	}
	tr.Observe(Observation{Work: 50, GSplit: trained, TG: 4, TC: 1})
	if tr.GSplit(50) != trained {
		t.Fatal("frozen policy must ignore feedback")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewAdaptive(1, 1, 0.5, 1).Name() != "adaptive" ||
		NewStatic(0.5, 1).Name() != "static" ||
		NewTrained(1, 1, 0.5, 1).Name() != "qilin-trained" {
		t.Fatal("policy names changed; experiment output depends on them")
	}
}

func TestClampSplitNaN(t *testing.T) {
	if clampSplit(math.NaN()) != minGSplit {
		t.Fatal("NaN must clamp to the minimum split")
	}
}

func TestOverheadIsSmall(t *testing.T) {
	// The paper claims negligible overhead: a lookup+update pair should be
	// well under a microsecond even in this unoptimized reproduction.
	a := NewAdaptive(64, 1e12, 0.889, 3)
	obs := Observation{Work: 1e9, GSplit: 0.889, TG: 1, TC: 1,
		CoreWorks: []float64{1, 1, 1}, CoreTimes: []float64{1, 1, 1}}
	const iters = 100000
	start := nowNanos()
	for i := 0; i < iters; i++ {
		_ = a.GSplit(obs.Work)
		a.Observe(obs)
	}
	perOp := float64(nowNanos()-start) / iters
	if perOp > 10000 { // 10 us: generous bound for CI machines
		t.Fatalf("adaptive overhead %v ns per call", perOp)
	}
}

func TestAdaptiveSurvivesAdversarialObservations(t *testing.T) {
	// Garbage measurements (Inf, NaN, negatives) must never corrupt the
	// database into an unusable split.
	a := NewAdaptive(8, 1000, 0.889, 3)
	hostile := []Observation{
		{Work: 100, GSplit: 0.9, TG: math.Inf(1), TC: 1},
		{Work: 100, GSplit: 0.9, TG: 1, TC: math.Inf(1)},
		{Work: 100, GSplit: math.NaN(), TG: 1, TC: 1},
		{Work: math.Inf(1), GSplit: 0.9, TG: 1, TC: 1},
		{Work: -5, GSplit: 0.9, TG: 1, TC: 1},
		{Work: 100, GSplit: 0.9, TG: -1, TC: 1},
		{Work: 100, GSplit: 0.9, TG: 1, TC: 1,
			CoreWorks: []float64{math.NaN(), 1, 1}, CoreTimes: []float64{1, 1, 1}},
	}
	for _, obs := range hostile {
		a.Observe(obs)
	}
	for _, w := range []float64{1, 500, 999} {
		s := a.GSplit(w)
		if math.IsNaN(s) || s < minGSplit || s > maxGSplit {
			t.Fatalf("split corrupted to %v after hostile observations", s)
		}
	}
	var sum float64
	for _, s := range a.CSplits() {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("core split corrupted: %v", a.CSplits())
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("core splits no longer sum to 1: %v", a.CSplits())
	}
}

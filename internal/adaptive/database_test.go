package adaptive

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"tianhe/internal/sim"
)

// TestDatabaseGBoundariesMonotoneAndTotal checks the workload-bucketing
// contract end to end: the Snapshot ranges tile (0, maxWork] contiguously
// with no gaps or overlaps, and the bucket-index mapping behind
// Lookup/Store is total (every float64 workload, including 0, negatives,
// NaN, and ±Inf, lands in exactly one bucket) and monotone non-decreasing
// in the workload.
func TestDatabaseGBoundariesMonotoneAndTotal(t *testing.T) {
	const j = 64
	const maxWork = 1e12
	d := NewDatabaseG(j, maxWork, 0.5)

	snap := d.Snapshot()
	if len(snap) != j {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), j)
	}
	if snap[0].WorkLo != 0 {
		t.Fatalf("first bucket starts at %g, want 0", snap[0].WorkLo)
	}
	if got := snap[j-1].WorkHi; math.Abs(got-maxWork) > 1e-3 {
		t.Fatalf("last bucket ends at %g, want %g", got, maxWork)
	}
	for i, e := range snap {
		if e.WorkHi <= e.WorkLo {
			t.Fatalf("bucket %d range (%g, %g] is empty or inverted", i, e.WorkLo, e.WorkHi)
		}
		if i > 0 && snap[i].WorkLo != snap[i-1].WorkHi {
			t.Fatalf("bucket %d starts at %g but bucket %d ends at %g: ranges must tile",
				i, snap[i].WorkLo, i-1, snap[i-1].WorkHi)
		}
	}

	// Make every bucket identifiable, then probe the mapping through the
	// public API: Store a distinct split per bucket midpoint.
	for i, e := range snap {
		d.Store((e.WorkLo+e.WorkHi)/2, float64(i))
	}

	bucketOf := func(work float64) int {
		return int(d.Lookup(work))
	}

	// Totality: extreme and degenerate workloads all resolve to a bucket.
	for _, tc := range []struct {
		work float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{math.SmallestNonzeroFloat64, 0},
		{maxWork * 2, j - 1},
		{math.Inf(1), j - 1},
		{math.MaxFloat64, j - 1},
	} {
		if got := bucketOf(tc.work); got != tc.want {
			t.Errorf("Lookup(%g) hit bucket %d, want %d", tc.work, got, tc.want)
		}
	}

	// Monotonicity: over a dense sweep the bucket index never decreases,
	// and every bucket is reachable.
	r := sim.NewStream(7, "database-boundaries")
	samples := make([]float64, 0, 4096)
	for i := 0; i < 4096; i++ {
		samples = append(samples, r.Range(0, maxWork*1.25))
	}
	// Deterministic insertion sort keeps the test stdlib-light and exact.
	for i := 1; i < len(samples); i++ {
		for k := i; k > 0 && samples[k] < samples[k-1]; k-- {
			samples[k], samples[k-1] = samples[k-1], samples[k]
		}
	}
	prev := 0
	seen := make(map[int]bool)
	for _, w := range samples {
		b := bucketOf(w)
		if b < prev {
			t.Fatalf("bucket index decreased: Lookup(%g) = %d after %d", w, b, prev)
		}
		if b < 0 || b >= j {
			t.Fatalf("Lookup(%g) out of range: %d", w, b)
		}
		prev = b
		seen[b] = true
	}
	for i := 0; i < j; i++ {
		if !seen[i] {
			t.Errorf("bucket %d unreachable in a dense sweep", i)
		}
	}
}

// TestDatabaseGConcurrentStress hammers one DatabaseG from many
// goroutines — concurrent Store/Lookup on colliding buckets plus Snapshot
// and MarshalJSON readers — so `go test -race` (the make check
// configuration) exercises the locking. Invariants: lookups only ever
// observe values some writer stored (or the initial split), and the final
// snapshot is consistent.
func TestDatabaseGConcurrentStress(t *testing.T) {
	const (
		j       = 16
		maxWork = 1e9
		initial = 0.889
		writers = 8
		ops     = 2000
	)
	d := NewDatabaseG(j, maxWork, initial)

	// Writers only ever store whole numbers in [0, writers*ops), so any
	// lookup must observe either the initial split or one of those.
	valid := func(v float64) bool {
		return v == initial || (v >= 0 && v < writers*ops && v == math.Trunc(v))
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := sim.NewStream(uint64(g), "database-stress")
			for i := 0; i < ops; i++ {
				work := r.Range(0, maxWork*1.1)
				switch i % 4 {
				case 0, 1:
					d.Store(work, float64(g*ops+i))
				case 2:
					if v := d.Lookup(work); !valid(v) {
						t.Errorf("Lookup returned impossible split %v", v)
						return
					}
				case 3:
					if i%64 == 3 {
						if _, err := json.Marshal(d); err != nil {
							t.Errorf("concurrent MarshalJSON: %v", err)
							return
						}
					} else {
						_ = d.Snapshot()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	snap := d.Snapshot()
	if len(snap) != j {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), j)
	}
	for i, e := range snap {
		if !valid(e.Split) {
			t.Errorf("bucket %d: split %v was never stored by any writer", i, e.Split)
		}
		if !e.Touched && e.Split != initial {
			t.Errorf("bucket %d: untouched but split %v != initial %v", i, e.Split, initial)
		}
	}
}

// TestDatabaseCConcurrentStress drives concurrent Update/Splits traffic
// through one DatabaseC under the race detector and checks the fractions
// always sum to 1 and stay non-negative.
func TestDatabaseCConcurrentStress(t *testing.T) {
	const cores = 4
	d := NewDatabaseC(cores)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := sim.NewStream(uint64(g), "database-c-stress")
			works := make([]float64, cores)
			times := make([]float64, cores)
			for i := 0; i < 1500; i++ {
				if g%2 == 0 {
					for c := range works {
						works[c] = r.Range(1, 1e9)
						times[c] = r.Range(1e-3, 10)
					}
					d.Update(works, times)
					continue
				}
				splits := d.Splits()
				var sum float64
				for _, s := range splits {
					if s < 0 {
						t.Errorf("negative CSplit %v", s)
						return
					}
					sum += s
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Errorf("CSplits sum to %v, want 1", sum)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

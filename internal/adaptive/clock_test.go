package adaptive

import "time"

// nowNanos isolates the single wall-clock dependency of the test suite (the
// overhead sanity check); everything else in the repository runs on virtual
// time.
func nowNanos() int64 { return time.Now().UnixNano() }

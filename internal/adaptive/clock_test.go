package adaptive

import "time"

// nowNanos isolates the single wall-clock dependency of the test suite (the
// overhead sanity check); everything else in the repository runs on virtual
// time.
//lint:ignore nowalltime the overhead sanity check must measure real elapsed time, not virtual time
func nowNanos() int64 { return time.Now().UnixNano() }

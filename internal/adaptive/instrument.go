package adaptive

import (
	"fmt"

	"tianhe/internal/telemetry"
)

// Instrumented decorates a Partitioner with telemetry probes: every Observe
// emits the newly stored GSplit and the per-core CSplits as counter series
// ("adaptive.gsplit", "adaptive.work", "adaptive.csplit.core<i>") timestamped
// with the observation's virtual end time, and maintains convergence metrics
// (update count, last split, per-update split delta histogram). The decorated
// policy is unchanged; GSplit/CSplits delegate directly.
type Instrumented struct {
	Partitioner

	trace     *telemetry.Tracer
	updates   *telemetry.Counter
	lastSplit *telemetry.Gauge
	delta     *telemetry.Histogram
	coreNames []string
}

// deltaBuckets grade the per-update |GSplit' - GSplit| magnitude: converged
// policies sit in the smallest buckets.
var deltaBuckets = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}

// Instrument wraps p with telemetry probes. A nil bundle (or nil policy)
// returns p unchanged, so uninstrumented paths keep the exact seed behavior.
func Instrument(p Partitioner, tel *telemetry.Telemetry) Partitioner {
	if p == nil || !tel.Enabled() {
		return p
	}
	names := make([]string, len(p.CSplits()))
	for i := range names {
		names[i] = fmt.Sprintf("adaptive.csplit.core%d", i)
	}
	return &Instrumented{
		Partitioner: p,
		trace:       tel.Trace,
		updates:     tel.Counter("adaptive.updates"),
		lastSplit:   tel.Gauge("adaptive.gsplit.last"),
		delta:       tel.Histogram("adaptive.gsplit.delta", deltaBuckets),
		coreNames:   names,
	}
}

// Unwrap returns the decorated policy (the persistence paths reach through
// it for the concrete *Adaptive and its databases).
func (ip *Instrumented) Unwrap() Partitioner { return ip.Partitioner }

// Observe implements Partitioner: it forwards the observation, then samples
// the policy's post-update state into the telemetry stream.
func (ip *Instrumented) Observe(obs Observation) {
	ip.Partitioner.Observe(obs)

	newSplit := ip.Partitioner.GSplit(obs.Work)
	ip.updates.Inc()
	ip.lastSplit.Set(newSplit)
	d := newSplit - obs.GSplit
	if d < 0 {
		d = -d
	}
	ip.delta.Observe(d)
	ip.trace.Sample("adaptive.gsplit", obs.End, newSplit)
	ip.trace.Sample("adaptive.work", obs.End, obs.Work)
	for i, s := range ip.Partitioner.CSplits() {
		if i < len(ip.coreNames) {
			ip.trace.Sample(ip.coreNames[i], obs.End, s)
		}
	}
}

// AsAdaptive returns the concrete *Adaptive behind p, reaching through any
// instrumentation decorators; ok is false for the non-adaptive policies.
func AsAdaptive(p Partitioner) (*Adaptive, bool) {
	for p != nil {
		switch v := p.(type) {
		case *Adaptive:
			return v, true
		case interface{ Unwrap() Partitioner }:
			p = v.Unwrap()
		default:
			return nil, false
		}
	}
	return nil, false
}

var _ Partitioner = (*Instrumented)(nil)

package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"tianhe/internal/sim"
)

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 3 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatal("new matrix must be zeroed")
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims should panic")
		}
	}()
	NewDense(-1, 2)
}

func TestAtSetColumnMajor(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.Data[2*m.Stride+1] != 7 {
		t.Fatal("storage is not column-major")
	}
	if m.At(1, 2) != 7 {
		t.Fatal("At did not read back Set value")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, c := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) should panic", c[0], c[1])
				}
			}()
			m.At(c[0], c[1])
		}()
	}
}

func TestFromColMajor(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromColMajor(2, 3, 2, data)
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 2) != 5 {
		t.Fatal("FromColMajor element mapping wrong")
	}
}

func TestFromColMajorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ld < rows should panic")
		}
	}()
	FromColMajor(3, 2, 2, make([]float64, 10))
}

func TestViewAliases(t *testing.T) {
	m := NewDense(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("view must alias parent storage")
	}
	if v.Stride != m.Stride {
		t.Fatal("view must inherit the parent stride")
	}
}

func TestViewBounds(t *testing.T) {
	m := NewDense(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view should panic")
		}
	}()
	m.View(2, 2, 2, 2)
}

func TestViewEmpty(t *testing.T) {
	m := NewDense(3, 3)
	v := m.View(1, 1, 0, 2)
	if v.Rows != 0 || v.Cols != 2 {
		t.Fatalf("empty view shape: %+v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 5 {
		t.Fatal("clone must not alias source")
	}
	if c.Stride != 2 {
		t.Fatal("clone must use a tight stride")
	}
}

func TestCloneOfViewTightens(t *testing.T) {
	m := NewDense(5, 5)
	m.Set(2, 2, 3)
	c := m.View(2, 2, 2, 2).Clone()
	if c.At(0, 0) != 3 || c.Stride != 2 {
		t.Fatalf("clone of view: %+v", c)
	}
}

func TestCopyFromShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	NewDense(2, 2).CopyFrom(NewDense(3, 2))
}

func TestZeroAndFill(t *testing.T) {
	m := NewDense(3, 3)
	m.Fill(2.5)
	if m.At(2, 2) != 2.5 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestIdentity(t *testing.T) {
	m := NewDense(3, 3)
	m.Fill(9)
	m.Identity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("identity (%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestIdentityNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square Identity should panic")
		}
	}()
	NewDense(2, 3).Identity()
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := NewDense(8, 8), NewDense(8, 8)
	a.FillRandom(sim.NewRNG(11))
	b.FillRandom(sim.NewRNG(11))
	if !a.Equal(b) {
		t.Fatal("same seed must produce the same matrix")
	}
	if a.MaxAbs() > 0.5 {
		t.Fatal("FillRandom range exceeded [-0.5, 0.5)")
	}
}

func TestFillDiagonallyDominant(t *testing.T) {
	m := NewDense(6, 6)
	m.FillDiagonallyDominant(sim.NewRNG(3))
	for i := 0; i < 6; i++ {
		var off float64
		for j := 0; j < 6; j++ {
			if i != j {
				off += math.Abs(m.At(i, j))
			}
		}
		if math.Abs(m.At(i, i)) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 4)
	m.Set(1, 2, 7)
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 4 || tr.At(2, 1) != 7 {
		t.Fatal("transpose wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := NewDense(5, 7)
	m.FillRandom(sim.NewRNG(2))
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose must be identity")
	}
}

func TestNorms(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, -2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	if m.NormInf() != 7 { // max row sum: |3|+|4|
		t.Fatalf("NormInf = %v", m.NormInf())
	}
	if m.NormOne() != 6 { // max col sum: |-2|+|4|
		t.Fatalf("NormOne = %v", m.NormOne())
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if math.Abs(m.NormFrob()-want) > 1e-15 {
		t.Fatalf("NormFrob = %v", m.NormFrob())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestNormTransposeDuality(t *testing.T) {
	m := NewDense(4, 6)
	m.FillRandom(sim.NewRNG(5))
	if math.Abs(m.NormOne()-m.Transpose().NormInf()) > 1e-14 {
		t.Fatal("NormOne(A) must equal NormInf(A^T)")
	}
}

func TestMaxDiff(t *testing.T) {
	a := NewDense(2, 2)
	b := a.Clone()
	b.Set(1, 1, 0.25)
	if a.MaxDiff(b) != 0.25 {
		t.Fatalf("MaxDiff = %v", a.MaxDiff(b))
	}
}

func TestEqualShapes(t *testing.T) {
	if NewDense(2, 2).Equal(NewDense(2, 3)) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestColSlice(t *testing.T) {
	m := NewDense(3, 2)
	m.Col(1)[2] = 8
	if m.At(2, 1) != 8 {
		t.Fatal("Col must alias storage")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	y := MulVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecIdentityProperty(t *testing.T) {
	r := sim.NewRNG(17)
	f := func(seed uint32) bool {
		n := 1 + int(seed%16)
		id := NewDense(n, n)
		id.Identity()
		x := NewVector(n)
		FillRandomVector(x, r)
		y := MulVec(id, x)
		return VecMaxDiff(x, y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorNorms(t *testing.T) {
	v := []float64{-3, 1, 2}
	if VecNormInf(v) != 3 || VecNormOne(v) != 6 {
		t.Fatal("vector norms wrong")
	}
}

func TestVecMaxDiffMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	VecMaxDiff([]float64{1}, []float64{1, 2})
}

func TestViewOfViewComposes(t *testing.T) {
	m := NewDense(6, 6)
	m.Set(3, 3, 5)
	v := m.View(1, 1, 4, 4).View(2, 2, 2, 2)
	if v.At(0, 0) != 5 {
		t.Fatal("nested views must compose offsets")
	}
}

// Package matrix provides the column-major dense matrix type shared by the
// BLAS, LU factorization and hybrid DGEMM layers. Column-major storage with
// an explicit leading dimension matches the HPL/LAPACK convention the paper's
// code base uses, and lets sub-panels of a larger matrix be described without
// copying.
package matrix

import (
	"fmt"
	"math"

	"tianhe/internal/sim"
)

// Dense is a column-major matrix view: element (i, j) lives at
// Data[j*Stride+i]. A Dense may own its backing array or alias a window of a
// larger matrix (see View); the arithmetic packages never care which.
type Dense struct {
	Rows, Cols int
	Stride     int // leading dimension, >= Rows
	Data       []float64
}

// NewDense allocates a zeroed r×c matrix with a tight leading dimension.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float64, r*c)}
}

// FromColMajor wraps existing column-major data with leading dimension ld.
func FromColMajor(r, c, ld int, data []float64) *Dense {
	if ld < r {
		panic(fmt.Sprintf("matrix: leading dimension %d < rows %d", ld, r))
	}
	if need := minBacking(r, c, ld); len(data) < need {
		panic(fmt.Sprintf("matrix: backing slice too short: %d < %d", len(data), need))
	}
	return &Dense{Rows: r, Cols: c, Stride: ld, Data: data}
}

func minBacking(r, c, ld int) int {
	if r == 0 || c == 0 {
		return 0
	}
	return (c-1)*ld + r
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[j*m.Stride+i]
}

// Set stores v into element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[j*m.Stride+i] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Col returns the storage slice of column j (length Rows).
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: column %d out of %d", j, m.Cols))
	}
	if m.Rows == 0 {
		return nil
	}
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// View returns the r×c window whose top-left corner is (i, j), sharing
// storage with m. Mutations through the view are visible in m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if r < 0 || c < 0 || i < 0 || j < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) out of %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Dense{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := j*m.Stride + i
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off : off+minBacking(r, c, m.Stride)]}
}

// Clone returns a freshly allocated deep copy with a tight stride.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src (same shape) into m.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Identity overwrites m (which must be square) with the identity matrix.
func (m *Dense) Identity() {
	if m.Rows != m.Cols {
		panic("matrix: Identity on non-square matrix")
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Set(i, i, 1)
	}
}

// FillRandom fills m with uniform values in [-0.5, 0.5) from the given
// stream, matching the HPL test-matrix distribution.
func (m *Dense) FillRandom(r *sim.RNG) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = r.Float64() - 0.5
		}
	}
}

// FillDiagonallyDominant fills m with random values and then adds Rows to
// each diagonal element, guaranteeing a well-conditioned LU without pivoting
// surprises. Used by tests that need a benign matrix.
func (m *Dense) FillDiagonallyDominant(r *sim.RNG) {
	m.FillRandom(r)
	n := min(m.Rows, m.Cols)
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+float64(m.Rows))
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			out.Set(j, i, col[i])
		}
	}
	return out
}

// Equal reports exact element-wise equality of two same-shaped matrices.
func (m *Dense) Equal(o *Dense) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		a, b := m.Col(j), o.Col(j)
		for i := range a {
			//lint:ignore floateq bitwise equality is this method's documented contract; MaxDiff is the tolerant comparison
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// MaxDiff returns the largest absolute element-wise difference between two
// same-shaped matrices.
func (m *Dense) MaxDiff(o *Dense) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("matrix: MaxDiff shape mismatch")
	}
	var d float64
	for j := 0; j < m.Cols; j++ {
		a, b := m.Col(j), o.Col(j)
		for i := range a {
			if v := math.Abs(a[i] - b[i]); v > d {
				d = v
			}
		}
	}
	return d
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Dense) NormInf() float64 {
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			sums[i] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormOne returns the 1-norm (max absolute column sum).
func (m *Dense) NormOne() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		var s float64
		for _, v := range m.Col(j) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrob returns the Frobenius norm.
func (m *Dense) NormFrob() float64 {
	var s float64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

func (m *Dense) String() string {
	return fmt.Sprintf("Dense{%dx%d, ld=%d}", m.Rows, m.Cols, m.Stride)
}

package matrix

import (
	"math"

	"tianhe/internal/sim"
)

// Vector helpers used by the right-hand-side handling of the Linpack driver.
// A vector is a plain []float64; these functions keep the driver code
// readable without introducing another type.

// NewVector returns a zeroed length-n vector.
func NewVector(n int) []float64 { return make([]float64, n) }

// FillRandomVector fills v with uniform values in [-0.5, 0.5).
func FillRandomVector(v []float64, r *sim.RNG) {
	for i := range v {
		v[i] = r.Float64() - 0.5
	}
}

// VecNormInf returns the infinity norm of v.
func VecNormInf(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// VecNormOne returns the 1-norm of v.
func VecNormOne(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// VecMaxDiff returns the largest absolute difference between two equal-length
// vectors.
func VecMaxDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: VecMaxDiff length mismatch")
	}
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// MulVec computes y = A*x for a dense A, allocating y.
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.Cols {
		panic("matrix: MulVec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		xj := x[j]
		if xj == 0 {
			continue
		}
		for i, v := range col {
			y[i] += v * xj
		}
	}
	return y
}

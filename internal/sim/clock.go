package sim

import "sync"

// Clock is a shared virtual clock. Components that execute strictly in
// sequence (the single-threaded control loop of a compute element) advance it
// directly; concurrent resources use Timelines and fold their completion
// times back into the clock with Sync.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time. Negative
// advances panic: virtual time never flows backwards.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic("sim: negative clock advance")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Sync moves the clock forward to tm if tm is later, returning the new time.
func (c *Clock) Sync(tm Time) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tm > c.now {
		c.now = tm
	}
	return c.now
}

// Reset returns the clock to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

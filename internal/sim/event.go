package sim

import "container/heap"

// Event is a callback scheduled at a virtual time in an Engine.
type Event struct {
	At Time
	Fn func()

	seq int // tie-breaker: FIFO among equal timestamps
	idx int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq exact-timestamp ties must fall through to the deterministic seq tie-breaker
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a minimal discrete-event simulation loop. The cluster-scale
// experiments use it to interleave per-process iteration completions.
type Engine struct {
	now     Time
	events  eventHeap
	nextSeq int
}

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time at. Scheduling in the past panics.
func (e *Engine) At(at Time, fn func()) {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.events, ev)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the earliest pending event, advancing time to it. It reports
// whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.At
	ev.Fn()
	return true
}

// Run executes events until none remain, returning the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline if it is later than the last event.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].At <= deadline {
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
	return e.now
}

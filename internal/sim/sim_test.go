package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := NewStream(7, "gpu")
	b := NewStream(7, "cpu")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("named streams produced %d identical values", same)
	}
}

func TestRNGStreamReproducible(t *testing.T) {
	a := NewStream(9, "net")
	b := NewStream(9, "net")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same (seed, name) must yield the same stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance %v, want ~4", variance)
	}
}

func TestLogNormalFactor(t *testing.T) {
	r := NewRNG(4)
	if f := r.LogNormalFactor(0); f != 1 {
		t.Fatalf("sigma=0 factor = %v, want exactly 1", f)
	}
	for i := 0; i < 1000; i++ {
		if f := r.LogNormalFactor(0.05); f <= 0 {
			t.Fatalf("factor must be positive, got %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRangeProperty(t *testing.T) {
	r := NewRNG(6)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineSequencing(t *testing.T) {
	tl := NewTimeline("gpu")
	s1 := tl.Book("a", 0, 2)
	s2 := tl.Book("b", 0, 3)
	if s1.Start != 0 || s1.End != 2 {
		t.Fatalf("first span %v", s1)
	}
	if s2.Start != 2 || s2.End != 5 {
		t.Fatalf("second span must queue behind the first: %v", s2)
	}
	if tl.Available() != 5 {
		t.Fatalf("available = %v, want 5", tl.Available())
	}
}

func TestTimelineEarliest(t *testing.T) {
	tl := NewTimeline("dma")
	s := tl.Book("x", 10, 1)
	if s.Start != 10 || s.End != 11 {
		t.Fatalf("span respecting earliest: %v", s)
	}
}

func TestTimelineBookAfter(t *testing.T) {
	a := NewTimeline("in")
	b := NewTimeline("exec")
	in := a.Book("input", 0, 4)
	ex := b.BookAfter("kernel", 3, in)
	if ex.Start != 4 {
		t.Fatalf("dependent op must wait for dep end: start=%v", ex.Start)
	}
	// A second op on b with an already-satisfied dep starts immediately.
	ex2 := b.BookAfter("kernel2", 2, in)
	if ex2.Start != 7 {
		t.Fatalf("queued op start=%v, want 7", ex2.Start)
	}
}

func TestTimelineNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration should panic")
		}
	}()
	NewTimeline("x").Book("bad", 0, -1)
}

func TestTimelineBusyAndSpans(t *testing.T) {
	tl := NewTimeline("core0")
	tl.Book("a", 0, 1.5)
	tl.Book("b", 0, 2.5)
	if got := tl.Busy(); got != 4 {
		t.Fatalf("busy = %v, want 4", got)
	}
	sp := tl.Spans()
	if len(sp) != 2 || sp[0].Label != "a" || sp[1].Label != "b" {
		t.Fatalf("spans = %v", sp)
	}
}

func TestTimelineRecordingOff(t *testing.T) {
	tl := NewTimeline("big")
	tl.SetRecording(false)
	tl.Book("a", 0, 1)
	if len(tl.Spans()) != 0 {
		t.Fatal("recording disabled but spans retained")
	}
	if tl.Available() != 1 {
		t.Fatal("time must still advance with recording off")
	}
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline("r")
	tl.Book("a", 0, 3)
	tl.Reset()
	if tl.Available() != 0 || len(tl.Spans()) != 0 {
		t.Fatal("reset did not clear the timeline")
	}
}

func TestTimelineAdvanceTo(t *testing.T) {
	tl := NewTimeline("adv")
	tl.AdvanceTo(5)
	if tl.Available() != 5 {
		t.Fatalf("available = %v", tl.Available())
	}
	tl.AdvanceTo(2) // going backwards is a no-op
	if tl.Available() != 5 {
		t.Fatal("AdvanceTo must never move backwards")
	}
}

func TestLatest(t *testing.T) {
	a, b := NewTimeline("a"), NewTimeline("b")
	a.Book("x", 0, 2)
	b.Book("y", 0, 7)
	if got := Latest(a, b); got != 7 {
		t.Fatalf("Latest = %v, want 7", got)
	}
}

func TestMergeSpansSorted(t *testing.T) {
	a, b := NewTimeline("a"), NewTimeline("b")
	a.Book("x", 1, 2)
	b.Book("y", 0, 1)
	all := MergeSpans(a, b)
	if len(all) != 2 || all[0].Label != "b:y" || all[1].Label != "a:x" {
		t.Fatalf("merged spans = %v", all)
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock must start at zero")
	}
	c.Advance(2.5)
	c.Sync(2.0) // earlier: no-op
	if c.Now() != 2.5 {
		t.Fatalf("now = %v", c.Now())
	}
	c.Sync(4)
	if c.Now() != 4 {
		t.Fatalf("now = %v after sync", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance should panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(2, func() { order = append(order, "b") })
	e.At(1, func() { order = append(order, "a") })
	e.At(2, func() { order = append(order, "c") }) // FIFO among ties
	end := e.Run()
	if end != 2 {
		t.Fatalf("final time %v", end)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	end := e.Run()
	if count != 5 || end != 4 {
		t.Fatalf("count=%d end=%v", count, end)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++ })
	e.At(5, func() { ran++ })
	e.RunUntil(3)
	if ran != 1 || e.Now() != 3 {
		t.Fatalf("ran=%d now=%v", ran, e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending=%d", e.Pending())
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(3, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(1, func() {})
}

package sim

import "testing"

func TestStretchHookLengthensBookings(t *testing.T) {
	tl := NewTimeline("q")
	tl.SetStretch(func(label string, start, dur Time) Time {
		if label == "gemm" {
			return dur + 2
		}
		return dur
	})
	sp := tl.Book("gemm", 0, 3)
	if got := sp.End - sp.Start; got != 5 {
		t.Fatalf("stretched duration %v, want 5", got)
	}
	sp = tl.Book("up", 0, 3)
	if got := sp.End - sp.Start; got != 3 {
		t.Fatalf("unstretched label changed: %v", got)
	}
	// The hook sees the resolved start (after queueing), not the request.
	var sawStart Time
	tl2 := NewTimeline("q2")
	tl2.Book("a", 0, 4)
	tl2.SetStretch(func(label string, start, dur Time) Time {
		sawStart = start
		return dur
	})
	tl2.Book("b", 1, 2)
	if sawStart != 4 {
		t.Fatalf("hook saw start %v, want 4 (queued behind the first op)", sawStart)
	}
}

func TestStretchHookMayOnlyLengthen(t *testing.T) {
	tl := NewTimeline("q")
	tl.SetStretch(func(label string, start, dur Time) Time { return dur / 2 })
	defer func() {
		if recover() == nil {
			t.Fatal("shortening stretch hook accepted")
		}
	}()
	tl.Book("gemm", 0, 3)
}

func TestStretchSurvivesReset(t *testing.T) {
	tl := NewTimeline("q")
	tl.SetStretch(func(label string, start, dur Time) Time { return dur * 2 })
	tl.Book("a", 0, 1)
	tl.Reset()
	sp := tl.Book("a", 0, 1)
	if got := sp.End - sp.Start; got != 2 {
		t.Fatalf("stretch lost across Reset: duration %v", got)
	}
}

// Package sim provides the deterministic simulation substrate used by the
// whole repository: a virtual clock, resource timelines on which operations
// book time, deterministic random number streams, and a small discrete-event
// engine. All performance measurements in this reproduction are taken in
// virtual time so that every experiment regenerates bit-identically on any
// machine, regardless of its real hardware.
package sim

import "math"

// RNG is a deterministic SplitMix64 pseudo random number generator. It is
// intentionally not the standard library generator: each model component owns
// a named stream seeded from the experiment seed, so adding a new consumer of
// randomness never perturbs existing streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewStream derives an independent child generator from a parent seed and a
// stream name. The same (seed, name) pair always yields the same stream.
func NewStream(seed uint64, name string) *RNG {
	h := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return NewRNG(h)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalFactor returns a multiplicative jitter factor with median 1 whose
// log has the given standard deviation sigma. sigma = 0 returns exactly 1.
func (r *RNG) LogNormalFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(r.Normal(0, sigma))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

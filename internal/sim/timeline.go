package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Time is a virtual timestamp or duration in seconds. Using float64 seconds
// keeps rate arithmetic (bytes/bandwidth, flops/rate) exact enough for the
// microsecond-to-hours range this simulator spans.
type Time = float64

// Span records one operation booked on a Timeline, for tracing and tests.
type Span struct {
	Label string
	Start Time
	End   Time
}

// Duration returns the length of the span.
func (s Span) Duration() Time { return s.End - s.Start }

func (s Span) String() string {
	return fmt.Sprintf("%s [%.6f, %.6f]", s.Label, s.Start, s.End)
}

// Timeline models one serially-reusable resource (a GPU command queue, a DMA
// engine, one CPU core, a NIC). Operations book contiguous intervals; an
// operation cannot start before the resource is free nor before its
// dependencies have finished. Overlap between *different* timelines is what
// produces pipelining in this simulator.
type Timeline struct {
	mu       sync.Mutex
	name     string
	avail    Time
	busy     Time
	spans    []Span
	record   bool
	observer func(Span)
	stretch  func(label string, start, duration Time) Time
}

// NewTimeline returns an empty resource timeline available at time 0.
func NewTimeline(name string) *Timeline {
	return &Timeline{name: name, record: true}
}

// Name returns the resource name the timeline was created with.
func (t *Timeline) Name() string { return t.name }

// SetRecording controls whether spans are retained. Large-scale simulations
// disable recording to bound memory.
func (t *Timeline) SetRecording(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record = on
}

// SetObserver installs a callback invoked after every booking with the span
// it occupied, independent of span retention — the telemetry tracer hooks
// timelines this way so even retention-free large-scale runs stream their
// schedule. A nil observer detaches. The callback runs outside the
// timeline's lock and must not book on the same timeline.
func (t *Timeline) SetObserver(obs func(Span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observer = obs
}

// SetStretch installs a duration hook consulted on every booking: given the
// operation's label, resolved start time and model duration, it returns the
// duration actually booked. Fault injection uses this to model stall spans
// (ECC scrubs, SMI storms) that freeze a resource mid-operation. The hook
// may only lengthen an operation — returning less than the model duration
// panics, because a "fault" that speeds hardware up is always a bug in the
// scenario. A nil hook (the default) books model durations unchanged and
// costs one nil check. The hook runs under the timeline's lock and must not
// book on any timeline.
func (t *Timeline) SetStretch(hook func(label string, start, duration Time) Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stretch = hook
}

// Available returns the earliest time a new operation could start.
func (t *Timeline) Available() Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.avail
}

// Book schedules an operation of the given duration that may not start
// before earliest, returning the span it occupies. A negative duration
// panics: durations come from rate models and must be non-negative.
func (t *Timeline) Book(label string, earliest Time, duration Time) Span {
	if duration < 0 {
		panic(fmt.Sprintf("sim: negative duration %v for %q", duration, label))
	}
	t.mu.Lock()
	start := t.avail
	if earliest > start {
		start = earliest
	}
	if t.stretch != nil {
		stretched := t.stretch(label, start, duration)
		if stretched < duration {
			t.mu.Unlock()
			panic(fmt.Sprintf("sim: stretch hook shortened %q from %v to %v", label, duration, stretched))
		}
		duration = stretched
	}
	sp := Span{Label: label, Start: start, End: start + duration}
	t.avail = sp.End
	t.busy += duration
	if t.record {
		t.spans = append(t.spans, sp)
	}
	obs := t.observer
	t.mu.Unlock()
	if obs != nil {
		obs(sp)
	}
	return sp
}

// BookAfter schedules an operation that depends on the given spans: it starts
// no earlier than the latest dependency end.
func (t *Timeline) BookAfter(label string, duration Time, deps ...Span) Span {
	earliest := Time(0)
	for _, d := range deps {
		if d.End > earliest {
			earliest = d.End
		}
	}
	return t.Book(label, earliest, duration)
}

// AdvanceTo moves the availability forward to at least tm (idle time).
func (t *Timeline) AdvanceTo(tm Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tm > t.avail {
		t.avail = tm
	}
}

// Spans returns a copy of the recorded spans in booking order.
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Busy returns the total booked time (sum of span durations). The
// accumulator is maintained on every booking, so it stays correct when span
// retention is off.
func (t *Timeline) Busy() Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.busy
}

// Reset clears the timeline back to time zero, dropping recorded spans.
func (t *Timeline) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.avail = 0
	t.busy = 0
	t.spans = nil
}

// Latest returns the maximum availability across the given timelines: the
// virtual time at which all of them are done.
func Latest(ts ...*Timeline) Time {
	var m Time
	for _, t := range ts {
		if a := t.Available(); a > m {
			m = a
		}
	}
	return m
}

// MergeSpans gathers the spans of several timelines into one list sorted by
// start time, prefixing each label with its resource name. Used for the
// textual pipeline traces.
func MergeSpans(ts ...*Timeline) []Span {
	var all []Span
	for _, t := range ts {
		for _, s := range t.Spans() {
			s.Label = t.Name() + ":" + s.Label
			all = append(all, s)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		//lint:ignore floateq exact-start ties must fall through to the label tie-breaker for a total order
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].Label < all[j].Label
	})
	return all
}

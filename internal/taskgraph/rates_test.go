package taskgraph

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRateDBColdAnswersModel(t *testing.T) {
	db := NewRateDB()
	if got := db.Estimate("gemm", true, 1e9, 0.5); got != 0.5 {
		t.Errorf("cold estimate = %v, want the model 0.5", got)
	}
}

func TestRateDBWarmsTowardMeasurement(t *testing.T) {
	db := NewRateDB()
	// Measured rate 2 GFLOP/s; model claims 1e9 flops take 0.1s (10 GFLOP/s).
	prev := db.Estimate("gemm", false, 1e9, 0.1)
	for i := 0; i < 20; i++ {
		db.Observe("gemm", false, 1e9, 0.5)
		est := db.Estimate("gemm", false, 1e9, 0.1)
		if est < prev-1e-12 {
			t.Fatalf("estimate moved away from the measurement: %v after %v", est, prev)
		}
		prev = est
	}
	if math.Abs(prev-0.5) > 0.07 {
		t.Errorf("warm estimate = %v, want near the measured 0.5", prev)
	}
}

func TestRateDBQuarantineDiscardsGPUObservations(t *testing.T) {
	db := NewRateDB()
	db.Observe("gemm", true, 1e9, 0.5)
	warm := db.Estimate("gemm", true, 1e9, 0.1)
	db.Quarantine()
	if !db.Quarantined() {
		t.Fatal("Quarantined() = false after Quarantine")
	}
	db.Observe("gemm", true, 1e9, 5.0) // outage measurement: must be dropped
	db.Rewarm(0)                       // full trust back immediately
	if got := db.Estimate("gemm", true, 1e9, 0.1); got != warm {
		t.Errorf("estimate after quarantined store = %v, want unchanged %v", got, warm)
	}
	// CPU observations are never quarantined.
	db2 := NewRateDB()
	db2.Quarantine()
	db2.Observe("gemm", false, 1e9, 1.0)
	if got := db2.Estimate("gemm", false, 1e9, 0.1); got == 0.1 {
		t.Error("CPU observation was discarded during GPU quarantine")
	}
}

func TestRateDBRewarmRestoresTrustGradually(t *testing.T) {
	db := NewRateDB()
	for i := 0; i < 50; i++ {
		db.Observe("gemm", true, 1e9, 0.5) // measured 2 GFLOP/s, model says 10
	}
	warm := db.Estimate("gemm", true, 1e9, 0.1)
	db.Quarantine()
	db.Rewarm(4)
	cold := db.Estimate("gemm", true, 1e9, 0.1)
	if math.Abs(cold-0.1) > 1e-9 {
		t.Errorf("estimate right after rewarm = %v, want the model 0.1", cold)
	}
	prev := cold
	for i := 0; i < 40; i++ {
		db.Observe("gemm", true, 1e9, 0.5)
		est := db.Estimate("gemm", true, 1e9, 0.1)
		if est < prev-1e-12 {
			t.Fatalf("trust regressed: estimate %v after %v", est, prev)
		}
		prev = est
	}
	if math.Abs(prev-warm) > 0.05 {
		t.Errorf("estimate after re-warm = %v, want back near %v", prev, warm)
	}
}

func TestRateDBJSONRoundTrip(t *testing.T) {
	db := NewRateDB()
	db.Observe("gemm", true, 1e9, 0.5)
	db.Observe("panel", false, 1e8, 0.2)
	b, err := json.Marshal(db)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back RateDB
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Errorf("round trip drifted:\n%s\n%s", b, b2)
	}
	if got, want := back.Estimate("gemm", true, 1e9, 9), db.Estimate("gemm", true, 1e9, 9); got != want {
		t.Errorf("restored estimate = %v, want %v", got, want)
	}
	if got := back.Codelets(); len(got) != 2 || got[0] != "gemm" || got[1] != "panel" {
		t.Errorf("Codelets = %v, want [gemm panel]", got)
	}
}

func TestRateDBDiscardsBadMeasurements(t *testing.T) {
	db := NewRateDB()
	db.Observe("gemm", false, 0, 1)
	db.Observe("gemm", false, 1e9, 0)
	db.Observe("gemm", false, math.NaN(), 1)
	db.Observe("gemm", false, 1e9, math.Inf(1))
	if got := db.Estimate("gemm", false, 1e9, 0.25); got != 0.25 {
		t.Errorf("estimate after garbage observations = %v, want the model 0.25", got)
	}
}

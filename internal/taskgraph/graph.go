// Package taskgraph is the dataflow task runtime the repository's workloads
// schedule onto: typed tasks (codelets with CPU and GPU cost variants) over
// explicit data handles with declared access modes, dependency inference from
// those declarations (StarPU's sequential-consistency rule), and a
// deterministic ready-queue scheduler that places every task on the compute
// element resource — GPU kernel queue or one of the CPU cores — where it is
// predicted to finish first, feeding measured rates back into a trust-blended
// database exactly the way the adaptive partitioner learns splits. Execution
// is virtual-time on the existing sim timelines, so the fault injector's
// health/stretch/throttle hooks and the telemetry bundle compose with graph
// execution unchanged.
package taskgraph

import "fmt"

// AccessMode declares how a task touches a handle.
type AccessMode uint8

const (
	// Read declares the task consumes the handle's current value.
	Read AccessMode = iota
	// Write declares the task overwrites the handle.
	Write
	// ReadWrite declares the task updates the handle in place.
	ReadWrite
)

func (m AccessMode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	case ReadWrite:
		return "RW"
	}
	return "?"
}

// Handle names one piece of data tasks exchange: a matrix tile, a pivot
// vector, a stencil block. The runtime never stores the data itself — a
// handle is a footprint (its byte size governs transfer bookings) plus an
// identity for dependency inference and device residency.
type Handle struct {
	id    int
	name  string
	bytes int64
}

// Name returns the handle's name; residency is keyed by it, so names must be
// unique within a graph.
func (h *Handle) Name() string { return h.name }

// Bytes returns the handle's footprint.
func (h *Handle) Bytes() int64 { return h.bytes }

// Access pairs a handle with the declared mode.
type Access struct {
	H    *Handle
	Mode AccessMode
}

// Costs carries a task's per-device model durations. A nil entry means the
// codelet has no implementation for that device; at least one must be set.
type Costs struct {
	// CPUSeconds returns the model duration on one compute core.
	CPUSeconds func() float64
	// GPUSeconds returns the model duration on the GPU kernel queue
	// (transfers are booked separately from the handle footprints).
	GPUSeconds func() float64
}

// Hybrid is the optional third implementation of a codelet: a body that
// splits the task's row extent across the GPU and the host cores by the
// adaptive GSplit, exactly the way the monolithic hybrid runner slab-splits a
// trailing update (level 1 GPU/CPU split, level 2 per-core split). The
// scheduler treats it as a placement candidate alongside the whole-CPU and
// whole-GPU bodies and books both halves: the device gets round(Rows*Split())
// rows, the host cores share the rest. Data semantics follow the row split —
// read handles are needed whole on both sides, written handles are split, the
// device's rows streaming back at the join so the host copy stays
// authoritative. The real host body (Task.Run) is unchanged: like every
// placement, a hybrid booking is a timing decision, so factors stay
// bit-identical whichever variant wins.
type Hybrid struct {
	// Rows is the splittable extent — the written tile's row count. Must be
	// positive.
	Rows int
	// Split returns the current GPU fraction from the split oracle
	// (adaptive database_g, keyed by this task's work bucket). Fractions
	// that round to 0 or Rows rows degrade the candidate to the pure CPU or
	// GPU body.
	Split func() float64
	// GPUSeconds models the kernel duration of a rows-high device half.
	GPUSeconds func(rows int) float64
	// CPUSeconds models the duration of a rows-high slab on one host core.
	CPUSeconds func(rows int) float64
	// CSplits returns the per-core share vector for the host half (adaptive
	// database_c); nil means equal shares across the element's cores.
	CSplits func() []float64
	// SplitReads declares the task's read handles row-local: the device half
	// needs only its row share of each read, not the whole handle. GEMM-class
	// codelets leave it false (the k-panels are needed whole on both sides);
	// stencil-class operators whose reads divide with the written rows set it
	// so the device half's upload scales with its share. Row shares are
	// transient occupancy — partial copies are never registered resident.
	SplitReads bool
	// FillSkew lets the scheduler top the host share up with the rows the
	// cores can absorb before the device half's projected join: core slabs
	// start the moment their data is ready, while the kernel waits behind the
	// queue and the upload gate, so a duration-balanced split would leave the
	// cores idle at the join. The monolithic pipeline's chunk overlap hides
	// the same skew; graph tasks opt in because the refinement moves rows
	// away from the oracle's split.
	FillSkew bool
	// Observe feeds the measured halves back to the split oracle after the
	// join: gsplit is the row fraction actually placed on the device, tg
	// and tc the per-side intrinsic durations (device half compute- or
	// stream-bound, tc the slowest core slab scaled by the fraction of
	// cores that participated, so the oracle's P_C always describes the
	// whole element's CPU capacity). coreWorks and coreTimes
	// carry the level-2 feedback — the flops assigned to and time taken by
	// each host core, zero for cores that sat the split out — so the
	// adaptive database_c can rebalance the host shares. nil disables
	// feedback.
	Observe func(gsplit, tg, tc float64, coreWorks, coreTimes []float64)
}

// Task is one node of the graph.
type Task struct {
	// Name labels the task in traces; unique within a graph.
	Name string
	// Codelet is the task's class name: it keys the measured-rate database,
	// so every task of one codelet shares the learned CPU and GPU rates.
	Codelet string
	// Flops is the work estimate the rate feedback divides by.
	Flops float64
	// Shape carries (m, n, k) for tasks that are ABFT-verifiable: the
	// checksum verification cost and the SDC strike geometry both need the
	// dimensions. A zero shape opts the task out of verification.
	Shape [3]int
	// Priority orders the ready queue: higher-priority tasks are placed
	// first. Builders use it to pull critical-path work (panel
	// factorizations) ahead of bulk updates.
	Priority int
	// Costs are the per-device model durations.
	Costs Costs
	// Hybrid, when non-nil, adds the split CPU+GPU implementation as a third
	// placement candidate. Hybrid tasks must declare both single-device
	// costs: the CPU body is the lost-GPU degradation path, the GPU body the
	// degenerate split.
	Hybrid *Hybrid
	// Run is the optional real-arithmetic host body. Bodies of concurrent
	// tasks must write only their declared Write/ReadWrite handles' data, so
	// parallel execution stays bit-identical to serial.
	Run func()
	// Accesses declares the data footprint dependencies are inferred from.
	Accesses []Access

	id   int
	deps []int
}

// ID returns the task's creation index within its graph.
func (t *Task) ID() int { return t.id }

// Deps returns the IDs of the tasks this task waits on.
func (t *Task) Deps() []int { return t.deps }

// Graph is a DAG of tasks over handles, built append-only: dependency
// inference and explicit After edges only ever point at already-added tasks,
// so a graph is acyclic by construction.
type Graph struct {
	tasks   []*Task
	handles []*Handle

	// Inference state, per handle: the last writer and the readers since.
	lastWriter map[int]int
	readers    map[int][]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		lastWriter: make(map[int]int),
		readers:    make(map[int][]int),
	}
}

// NewHandle registers a data handle of the given footprint.
func (g *Graph) NewHandle(name string, bytes int64) *Handle {
	if bytes < 0 {
		panic(fmt.Sprintf("taskgraph: negative handle size %d for %q", bytes, name))
	}
	h := &Handle{id: len(g.handles), name: name, bytes: bytes}
	g.handles = append(g.handles, h)
	return h
}

// Tasks returns the tasks in creation order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Add inserts a task, infers its dependencies from the declared accesses
// (readers wait on the last writer; writers wait on the last writer and
// every reader since — the RAW/WAR/WAW rule), and returns it. Tasks with no
// device variant at all panic: they could never run.
func (g *Graph) Add(t *Task) *Task {
	if t.Costs.CPUSeconds == nil && t.Costs.GPUSeconds == nil {
		panic(fmt.Sprintf("taskgraph: task %q has no device variant", t.Name))
	}
	if h := t.Hybrid; h != nil {
		if t.Costs.CPUSeconds == nil || t.Costs.GPUSeconds == nil {
			panic(fmt.Sprintf("taskgraph: hybrid task %q must declare both single-device bodies", t.Name))
		}
		if h.Rows <= 0 || h.Split == nil || h.GPUSeconds == nil || h.CPUSeconds == nil {
			panic(fmt.Sprintf("taskgraph: hybrid task %q has an incomplete hybrid descriptor", t.Name))
		}
	}
	t.id = len(g.tasks)
	seen := map[int]bool{}
	dep := func(id int) {
		if id >= 0 && id != t.id && !seen[id] {
			seen[id] = true
			t.deps = append(t.deps, id)
		}
	}
	for _, a := range t.Accesses {
		if a.H == nil {
			panic(fmt.Sprintf("taskgraph: task %q declares a nil handle", t.Name))
		}
		switch a.Mode {
		case Read:
			if w, ok := g.lastWriter[a.H.id]; ok {
				dep(w)
			}
			g.readers[a.H.id] = append(g.readers[a.H.id], t.id)
		case Write, ReadWrite:
			if w, ok := g.lastWriter[a.H.id]; ok {
				dep(w)
			}
			for _, r := range g.readers[a.H.id] {
				dep(r)
			}
			g.lastWriter[a.H.id] = t.id
			g.readers[a.H.id] = nil
		default:
			panic(fmt.Sprintf("taskgraph: task %q declares unknown access mode %d", t.Name, a.Mode))
		}
	}
	g.tasks = append(g.tasks, t)
	return t
}

// After adds explicit dependencies beyond what access inference produced —
// look-ahead depth barriers use it. Dependencies must already be in the
// graph, which keeps the append-only acyclicity guarantee.
func (g *Graph) After(t *Task, deps ...*Task) {
	if len(g.tasks) == 0 || g.tasks[t.id] != t {
		panic(fmt.Sprintf("taskgraph: After on task %q before Add", t.Name))
	}
	seen := map[int]bool{}
	for _, d := range t.deps {
		seen[d] = true
	}
	for _, d := range deps {
		if g.tasks[d.id] != d {
			panic(fmt.Sprintf("taskgraph: dependency %q of %q not in this graph", d.Name, t.Name))
		}
		if d.id == t.id || seen[d.id] {
			continue
		}
		seen[d.id] = true
		t.deps = append(t.deps, d.id)
	}
}

// Validate checks structural invariants: in-range acyclic dependencies and
// unique task names. The append-only builder cannot produce a cycle, but the
// scheduler still refuses graphs that fail validation rather than deadlock.
func (g *Graph) Validate() error {
	names := make(map[string]bool, len(g.tasks))
	for i, t := range g.tasks {
		if t.id != i {
			return fmt.Errorf("taskgraph: task %q has id %d at position %d", t.Name, t.id, i)
		}
		if names[t.Name] {
			return fmt.Errorf("taskgraph: duplicate task name %q", t.Name)
		}
		names[t.Name] = true
		for _, d := range t.deps {
			if d < 0 || d >= len(g.tasks) {
				return fmt.Errorf("taskgraph: task %q depends on out-of-range task %d", t.Name, d)
			}
			if d >= i {
				return fmt.Errorf("taskgraph: task %q depends on later task %d — cycle", t.Name, d)
			}
		}
	}
	return nil
}

package taskgraph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"tianhe/internal/abft"
	"tianhe/internal/element"
	"tianhe/internal/fault"
	"tianhe/internal/sim"
	"tianhe/internal/telemetry"
)

// Options configures a Scheduler.
type Options struct {
	// Affinity is the measured-rate database placement decisions blend with
	// the static cost models; nil builds a fresh one. Sharing one database
	// across graphs is how the runtime learns: the LU stepper feeds every
	// iteration's measurements into the next iteration's placements.
	Affinity *RateDB
	// Telemetry receives the scheduler's probes; nil disables them.
	Telemetry *telemetry.Telemetry
	// Verify enables ABFT checksum verification of every GPU task that
	// declares a Shape, at its drain, exactly like the pipeline executor.
	Verify bool
	// SDC is the injector consulted for corruption strikes at each verified
	// drain (nil: verification runs, nothing strikes).
	SDC *fault.Injector
	// GPUFallback makes the scheduler resilient to device loss: tasks place
	// CPU-only while the hardware is gone (quarantining the affinity
	// database's GPU side), and recovery books the context re-init and
	// re-warms with RewarmHalfLife. Without it a dead context stalls the run,
	// like every fault-unaware runtime.
	GPUFallback    bool
	RewarmHalfLife float64
	// RateSeeds plants perfmodel-derived rates into the affinity database's
	// empty cells before the first placement, so a cold run ranks variants
	// from the model instead of swinging on the first jittered measurements.
	// Cells already warmed (a shared or checkpoint-restored database) are
	// left alone.
	RateSeeds []RateSeed
	// Par is the host worker count real task bodies execute on; <= 1 runs
	// them serially in schedule order. Placement and every booking are
	// serial regardless, so timing is byte-identical across Par values, and
	// bodies write disjoint declared handles, so data is too.
	Par int
}

// RateSeed is one cold-start prior for the affinity database: the model's
// predicted rate for a codelet's variant class.
type RateSeed struct {
	Codelet string
	Class   Class
	Rate    float64 // flops per second
}

// TaskSpan records one placed task for traces and goldens.
type TaskSpan struct {
	// Name and Codelet identify the task; Device is "gpu", "cpuN", or
	// "hyb(gCPUROWS)" for a hybrid placement showing the device row share.
	Name, Codelet, Device string
	// Start and End bound the task's execution booking (ABFT verification
	// and recompute extensions included in End).
	Start, End sim.Time
}

// Report summarizes one scheduled graph.
type Report struct {
	// Start and End bound the whole graph in virtual time (final dirty-handle
	// drain included).
	Start, End sim.Time
	// Tasks counts the graph's tasks; TasksGPU/TasksCPU/TasksHyb the
	// placement split across the three variant classes.
	Tasks, TasksGPU, TasksCPU, TasksHyb int
	// Flops is the summed task work.
	Flops float64
	// BytesIn/BytesOut are the booked transfer volumes; BytesSkipped counts
	// reads served from device residency.
	BytesIn, BytesOut, BytesSkipped int64
	// SDC/ABFT outcome counters, as in the pipeline report.
	SDCDetected, SDCCorrected, SDCEscalated, RecomputedTasks int
	// VerifySeconds is the host checksum time, included in End.
	VerifySeconds float64
	// Stalled reports a fault-unaware scheduler hitting a dead GPU context:
	// nothing past that submission executed.
	Stalled bool
	// TaskSpans lists every task in schedule order.
	TaskSpans []TaskSpan
}

// Seconds returns the end-to-end virtual duration.
func (r Report) Seconds() float64 { return r.End - r.Start }

// GFLOPS returns the achieved rate.
func (r Report) GFLOPS() float64 {
	s := r.Seconds()
	if s <= 0 {
		return 0
	}
	return r.Flops / s / 1e9
}

// Span returns the recorded span of the named task; ok is false when the
// task was not scheduled (stalled run).
func (r Report) Span(name string) (TaskSpan, bool) {
	for _, ts := range r.TaskSpans {
		if ts.Name == name {
			return ts, true
		}
	}
	return TaskSpan{}, false
}

// schedProbes holds the scheduler's metric handles, fetched once.
type schedProbes struct {
	tasks, tasksGPU, tasksCPU       *telemetry.Counter
	tasksHyb                        *telemetry.Counter
	flops                           *telemetry.Counter
	bytesIn, bytesOut, bytesSkipped *telemetry.Counter
	makespan                        *telemetry.Gauge
	tracer                          *telemetry.Tracer

	// ABFT probes, registered lazily on the first verified task so metric
	// dumps of unverified runs stay byte-identical.
	tel                            *telemetry.Telemetry
	sdcDetected, sdcCorr, sdcEscal *telemetry.Counter
	verifySeconds                  *telemetry.Gauge
}

func (pr *schedProbes) sdcProbes() {
	if pr.sdcDetected != nil {
		return
	}
	pr.sdcDetected = pr.tel.Counter("taskgraph.sdc.detected")
	pr.sdcCorr = pr.tel.Counter("taskgraph.sdc.corrected")
	pr.sdcEscal = pr.tel.Counter("taskgraph.sdc.escalated")
	pr.verifySeconds = pr.tel.Gauge("taskgraph.abft.verify_seconds")
}

func newSchedProbes(tel *telemetry.Telemetry) *schedProbes {
	if !tel.Enabled() {
		return nil
	}
	return &schedProbes{
		tasks:        tel.Counter("taskgraph.tasks"),
		tasksGPU:     tel.Counter("taskgraph.tasks_gpu"),
		tasksCPU:     tel.Counter("taskgraph.tasks_cpu"),
		tasksHyb:     tel.Counter("taskgraph.tasks_hyb"),
		flops:        tel.Counter("taskgraph.flops"),
		bytesIn:      tel.Counter("taskgraph.bytes_in"),
		bytesOut:     tel.Counter("taskgraph.bytes_out"),
		bytesSkipped: tel.Counter("taskgraph.bytes_skipped"),
		makespan:     tel.Gauge("taskgraph.makespan_seconds"),
		tracer:       tel.Trace,
		tel:          tel,
	}
}

// Scheduler places graphs on one compute element. It persists across graphs:
// the affinity database, the SDC task counter, and the fault state carry
// from one Run to the next, which is what lets the per-iteration LU graphs
// behave like one long adaptive run.
type Scheduler struct {
	el     *element.Element
	opts   Options
	rates  *RateDB
	probes *schedProbes

	gpuDown bool
	taskSeq int
}

// NewScheduler builds a scheduler over the element.
func NewScheduler(el *element.Element, opts Options) *Scheduler {
	if opts.Affinity == nil {
		opts.Affinity = NewRateDB()
	}
	for _, sd := range opts.RateSeeds {
		opts.Affinity.Seed(sd.Codelet, sd.Class, sd.Rate)
	}
	return &Scheduler{
		el:     el,
		opts:   opts,
		rates:  opts.Affinity,
		probes: newSchedProbes(opts.Telemetry),
	}
}

// Rates returns the affinity database (for checkpointing and tests).
func (s *Scheduler) Rates() *RateDB { return s.rates }

// TaskSeq returns the global verified-task counter that keys the SDC
// injector's per-task decision streams.
func (s *Scheduler) TaskSeq() int { return s.taskSeq }

// SetTaskSeq restores the counter from a checkpoint.
func (s *Scheduler) SetTaskSeq(n int) { s.taskSeq = n }

// readyItem is one schedulable task in the priority queue.
type readyItem struct {
	id       int
	priority int
	readyAt  sim.Time
}

// readyHeap orders by (-priority, readyAt, id): critical-path tasks first,
// then earliest-ready, with the creation index as the deterministic
// tie-breaker.
type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	//lint:ignore floateq exact ready-time ties must fall through to the id tie-breaker for a total order
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// residentEntry tracks one handle cached in device memory.
type residentEntry struct {
	bytes int64
	sp    sim.Span // the booking that produced the device copy
	dirty bool     // device copy newer than host
	lru   int
}

// Run schedules and executes the graph, with no task starting before
// earliest. Placement is a serial deterministic list-scheduling loop; real
// host bodies then execute (serially or on Options.Par workers) in an order
// consistent with the dependency DAG.
func (s *Scheduler) Run(g *Graph, earliest sim.Time) (Report, error) {
	if err := g.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Start: earliest, End: earliest, Tasks: g.Len()}
	tasks := g.Tasks()

	// Dependency bookkeeping.
	n := len(tasks)
	indeg := make([]int, n)
	children := make([][]int, n)
	for _, t := range tasks {
		indeg[t.id] = len(t.deps)
		for _, d := range t.deps {
			children[d] = append(children[d], t.id)
		}
	}
	finish := make([]sim.Time, n)

	ready := &readyHeap{}
	for _, t := range tasks {
		if indeg[t.id] == 0 {
			heap.Push(ready, readyItem{id: t.id, priority: t.Priority, readyAt: earliest})
		}
	}

	// Device residency, keyed by handle name; fresh per Run so a graph's
	// timing never depends on what an earlier graph left in device memory
	// (checkpoint restores replay bit-identically).
	resident := make(map[string]*residentEntry)
	lruTick := 0
	var memInUse int64
	dev := s.el.GPU
	cores := s.el.CPU.Cores()

	dropResidency := func() {
		resident = make(map[string]*residentEntry)
		memInUse = 0
	}

	evictFor := func(need int64, keep map[string]bool) {
		for memInUse+need > dev.MemBytes() {
			victim := ""
			best := int(^uint(0) >> 1)
			for name, re := range resident {
				if keep[name] {
					continue
				}
				if re.lru < best {
					best, victim = re.lru, name
				}
			}
			if victim == "" {
				panic(fmt.Sprintf("taskgraph: working set of %d bytes exceeds device memory %d", need, dev.MemBytes()))
			}
			re := resident[victim]
			if re.dirty {
				// The only device copy is newer than the host: write it back
				// before dropping it.
				sp := dev.DownloadBytes(re.bytes, re.sp.End)
				rep.BytesOut += re.bytes
				if sp.End > rep.End {
					rep.End = sp.End
				}
			}
			memInUse -= re.bytes
			delete(resident, victim)
		}
	}

	// streamWindow is the double-buffered staging budget for oversized
	// written working sets. A task whose written tiles cannot fit on the
	// device streams them through this window instead of making them
	// resident, exactly like the monolithic pipeline's bounded C windows:
	// only the head window gates the kernel launch, the rest of the
	// traffic rides the DMA engine under the kernel, and the kernel runs
	// bandwidth-bound when the stream cannot keep up.
	streamWindow := dev.MemBytes() / 4

	// admitGPU applies device-health admission control before a GPU
	// placement, mirroring the hybrid runner: fault-unaware schedulers stall
	// on a dead context; fault-aware ones fall back to CPU during the outage
	// (quarantining the affinity database's GPU rates and dropping the lost
	// device memory) and re-init + re-warm once the hardware answers.
	admitGPU := func(at sim.Time) (ok, stalled bool) {
		if dev.Health() == nil || !dev.ContextDead(at) {
			return true, false
		}
		if !s.opts.GPUFallback {
			return false, true
		}
		if dev.AvailableAt(at) {
			sp := dev.Reinit(at)
			dev.DMA.AdvanceTo(sp.End)
			// The re-created context starts with empty device memory.
			dropResidency()
			s.gpuDown = false
			s.rates.Rewarm(s.opts.RewarmHalfLife)
			if pr := s.probes; pr != nil {
				pr.tracer.Instant("taskgraph.fault", "fault", "gpu.reinit", sp.End)
			}
			return true, false
		}
		if !s.gpuDown {
			s.gpuDown = true
			s.rates.Quarantine()
			dropResidency()
			if pr := s.probes; pr != nil {
				pr.tracer.Instant("taskgraph.fault", "fault", "gpu.fallback", at)
			}
		}
		return false, false
	}

	for ready.Len() > 0 {
		it := heap.Pop(ready).(readyItem)
		t := tasks[it.id]
		readyAt := it.readyAt
		rep.Flops += t.Flops

		// Candidate devices. A GPU-only task during an outage waits for the
		// hardware to answer again (its readiness moves to the restore time,
		// where admission re-inits the context).
		gpuOK := t.Costs.GPUSeconds != nil
		cpuOK := t.Costs.CPUSeconds != nil
		if gpuOK && dev.Health() != nil && dev.ContextDead(readyAt) {
			at := readyAt
			if !cpuOK && !dev.AvailableAt(at) && s.opts.GPUFallback {
				at = dev.Health().RestoredAt(at)
				readyAt = at
			}
			ok, stalled := admitGPU(at)
			if stalled {
				rep.Stalled = true
				if pr := s.probes; pr != nil {
					pr.tracer.Instant("taskgraph.fault", "fault", "gpu.stall", readyAt)
				}
				return rep, nil
			}
			gpuOK = ok
		}
		if !gpuOK && !cpuOK {
			panic(fmt.Sprintf("taskgraph: task %q has no runnable device variant", t.Name))
		}

		// Estimate every placement candidate, blending models with measured
		// rates.
		const never = 1e30
		gpuEst, cpuEst, hybEst := sim.Time(never), sim.Time(never), sim.Time(never)
		bestCore := -1
		hybRows := 0
		var hybShares []int
		if gpuOK {
			var readFresh, rwFresh, wrFresh int64
			for _, a := range t.Accesses {
				if _, ok := resident[a.H.name]; ok {
					continue
				}
				switch a.Mode {
				case Read:
					readFresh += a.H.bytes
				case ReadWrite:
					rwFresh += a.H.bytes
					wrFresh += a.H.bytes
				case Write:
					wrFresh += a.H.bytes
				}
			}
			gateBytes, upRest, downBytes, _, _ := streamPlan(readFresh, rwFresh, wrFresh, streamWindow)
			model := t.Costs.GPUSeconds()
			if upRest+downBytes > 0 {
				// Streamed: only the head gates the launch; the rest
				// overlaps the kernel, bandwidth-bound if slower.
				if streamSec := dev.TransferModel().Seconds(upRest + downBytes); streamSec > model {
					model = streamSec
				}
			}
			xfer := dev.TransferModel().Seconds(gateBytes)
			start := dev.Queue.Available()
			if readyAt > start {
				start = readyAt
			}
			dmaDone := dev.DMA.Available()
			if readyAt > dmaDone {
				dmaDone = readyAt
			}
			dmaDone += xfer
			if dmaDone > start {
				start = dmaDone
			}
			gpuEst = start + s.rates.Estimate(t.Codelet, true, t.Flops, model)
		}
		if cpuOK {
			est := s.rates.Estimate(t.Codelet, false, t.Flops, t.Costs.CPUSeconds())
			for ci, core := range cores {
				st := core.TL.Available()
				if readyAt > st {
					st = readyAt
				}
				if fin := st + est; fin < cpuEst {
					cpuEst, bestCore = fin, ci
				}
			}
		}
		// Hybrid candidate: the split body occupies the device queue and the
		// host cores at once. It is ineligible while the device is down
		// (gpuOK is already false — the CPU body is the degradation path)
		// and when the oracle's split rounds to a whole-device placement.
		if t.Hybrid != nil && gpuOK && cpuOK {
			h := t.Hybrid
			// devPlan models the device half of a split at a given row
			// share: the upload bytes that gate the kernel launch (whole
			// fresh reads plus the written share — or, when the share
			// overflows the stream window, just the head window), the
			// overlapped stream time, and the resulting earliest kernel
			// start. Mirrored exactly by the booking below so the learned
			// rate predicts what actually gets booked.
			devPlan := func(m1 int) (start sim.Time, streamSec float64) {
				var readFresh, rwFresh, wrFresh int64
				for _, a := range t.Accesses {
					if _, ok := resident[a.H.name]; ok {
						continue
					}
					fb := a.H.bytes * int64(m1) / int64(h.Rows)
					switch a.Mode {
					case Read:
						if h.SplitReads {
							readFresh += fb
						} else {
							readFresh += a.H.bytes
						}
					case ReadWrite:
						rwFresh += fb
						wrFresh += fb
					case Write:
						wrFresh += fb
					}
				}
				gate, upRest, downBytes, _, _ := streamPlan(readFresh, rwFresh, wrFresh, streamWindow)
				if upRest+downBytes > 0 {
					streamSec = dev.TransferModel().Seconds(upRest + downBytes)
				}
				start = dev.Queue.Available()
				if readyAt > start {
					start = readyAt
				}
				dmaDone := dev.DMA.Available()
				if readyAt > dmaDone {
					dmaDone = readyAt
				}
				dmaDone += sim.Time(dev.TransferModel().Seconds(gate))
				if dmaDone > start {
					start = dmaDone
				}
				return start, streamSec
			}
			if m1 := int(math.Round(float64(h.Rows) * h.Split())); m1 > 0 && m1 < h.Rows {
				// Cores that cannot join by the kernel's start (busy with a
				// panel or an earlier slab) are dropped from the split and
				// their rows handed back to the device — a synchronized
				// split that waited for every core would serialize behind
				// whatever the slowest core is doing. If no core is free in
				// time, fall back to the fully synchronized split.
				start0, _ := devPlan(m1)
				usable := make([]bool, len(cores))
				nUsable := 0
				for ci := range cores {
					if cores[ci].TL.Available() <= start0 {
						usable[ci] = true
						nUsable++
					}
				}
				if nUsable == 0 {
					for ci := range cores {
						usable[ci] = true
					}
					nUsable = len(cores)
				}
				m2 := h.Rows - m1
				if nUsable < len(cores) {
					m2 = m2 * nUsable / len(cores)
					m1 = h.Rows - m2
				}
				if m2 > 0 {
					fr := make([]float64, len(cores))
					for i := range fr {
						if usable[i] {
							fr[i] = 1
						}
					}
					if h.CSplits != nil {
						if cs := h.CSplits(); len(cs) == len(cores) {
							for i := range fr {
								if usable[i] {
									fr[i] = cs[i]
								}
							}
						}
					}
					shares := allocRows(m2, fr)
					if h.FillSkew {
						// Refine toward a synchronized join: each core's slab
						// starts at max(data ready, core free) — usually
						// before the kernel, which waits behind the queue and
						// the upload gate — so size each slab to end exactly
						// at the device half's projected join. Two passes
						// close the fixed point (the join barely moves once
						// the device share is near its final value).
						var wsum float64
						for i := range fr {
							wsum += fr[i]
						}
						for pass := 0; pass < 2 && wsum > 0; pass++ {
							kStart, ss := devPlan(m1)
							join := kStart + sim.Time(h.GPUSeconds(m1))
							if se := kStart + sim.Time(ss); se > join {
								join = se
							}
							ref := m2 / nUsable
							if ref < 1 {
								ref = 1
							}
							secPerRow := h.CPUSeconds(ref) / float64(ref)
							if secPerRow <= 0 {
								break
							}
							total := 0
							for ci := range cores {
								shares[ci] = 0
								if !usable[ci] || fr[ci] <= 0 {
									continue
								}
								st := readyAt
								if a := cores[ci].TL.Available(); a > st {
									st = a
								}
								budget := float64(join - st)
								if budget <= 0 {
									continue
								}
								r := int(budget / secPerRow * fr[ci] * float64(nUsable) / wsum)
								if r > h.Rows {
									r = h.Rows
								}
								shares[ci] = r
								total += r
							}
							if total > h.Rows-1 {
								// The cores could swallow the whole task before
								// the device half finishes; keep one device row
								// so the booking stays a genuine split.
								scale := float64(h.Rows-1) / float64(total)
								total = 0
								for ci := range shares {
									shares[ci] = int(float64(shares[ci]) * scale)
									total += shares[ci]
								}
							}
							m2 = total
							m1 = h.Rows - m2
						}
						// The two-pass fixed point assumes the join moves slowly
						// with the device share. Transfer-dominated codelets
						// (SplitReads stencils, where the upload gate scales
						// with the share) violate that: the map overshoots and
						// oscillates between a starved and a saturated device
						// half. capacityAt re-derives the rows the cores could
						// absorb by a given share's join; when that disagrees
						// with what the passes assigned, fall back to a
						// bisection on the device share — the capacity-vs-
						// demand balance is monotone in m1, so it always lands.
						capacityAt := func(m1c int) ([]int, int) {
							kStart, ss := devPlan(m1c)
							join := kStart + sim.Time(h.GPUSeconds(m1c))
							if se := kStart + sim.Time(ss); se > join {
								join = se
							}
							ref := (h.Rows - m1c) / nUsable
							if ref < 1 {
								ref = 1
							}
							secPerRow := h.CPUSeconds(ref) / float64(ref)
							if secPerRow <= 0 {
								return nil, 0
							}
							caps := make([]int, len(cores))
							total := 0
							for ci := range cores {
								if !usable[ci] || fr[ci] <= 0 {
									continue
								}
								st := readyAt
								if a := cores[ci].TL.Available(); a > st {
									st = a
								}
								budget := float64(join - st)
								if budget <= 0 {
									continue
								}
								r := int(budget / secPerRow * fr[ci] * float64(nUsable) / wsum)
								if r > h.Rows {
									r = h.Rows
								}
								caps[ci] = r
								total += r
							}
							return caps, total
						}
						if wsum > 0 && m2 > 0 {
							tol := m2 / 8
							if tol < 2 {
								tol = 2
							}
							if _, cap := capacityAt(m1); cap+tol < m2 || cap > m2+tol {
								lo, hi := 1, h.Rows-1
								for lo < hi {
									mid := (lo + hi) / 2
									if _, c := capacityAt(mid); c >= h.Rows-mid {
										hi = mid
									} else {
										lo = mid + 1
									}
								}
								m1 = lo
								m2 = h.Rows - m1
								if caps, cap := capacityAt(m1); cap > 0 {
									w := make([]float64, len(cores))
									for i, c := range caps {
										w[i] = float64(c)
									}
									shares = allocRows(m2, w)
								} else {
									shares = allocRows(m2, fr)
								}
								total := 0
								for _, r := range shares {
									total += r
								}
								m2 = total
								m1 = h.Rows - m2
							}
						}
						if m2 == 0 {
							// Nothing to top up — degenerate back to the
							// oracle's allocation.
							m2 = h.Rows - m1
							shares = allocRows(m2, fr)
						}
					}
					start, streamSec := devPlan(m1)
					// Rank like the single-device candidates: waiting time
					// stays outside the learned rate. The candidate runs for
					// the intrinsic parallel compute time — max of the
					// device half (compute- or bandwidth-bound) and the
					// slowest core slab. Folding per-resource queue skew
					// into the measured rate would let one congested
					// wavefront poison the class forever.
					intrinsic := h.GPUSeconds(m1)
					if streamSec > intrinsic {
						intrinsic = streamSec
					}
					if h.FillSkew {
						// Skew-filled slabs start before the kernel and end
						// at the join by construction: measure them in the
						// kernel-start frame, like the observation, so the
						// rank is the projected join and the head start that
						// overlaps earlier work is not double-charged.
						for ci, rc := range shares {
							if rc == 0 {
								continue
							}
							st := readyAt
							if a := cores[ci].TL.Available(); a > st {
								st = a
							}
							if d := float64(st-start) + h.CPUSeconds(rc); d > intrinsic {
								intrinsic = d
							}
						}
					} else {
						for ci, rc := range shares {
							if rc == 0 {
								continue
							}
							if st := cores[ci].TL.Available(); st > start {
								start = st
							}
							if d := h.CPUSeconds(rc); d > intrinsic {
								intrinsic = d
							}
						}
					}
					hybEst = start + s.rates.EstimateClass(t.Codelet, ClassHyb, t.Flops, intrinsic)
					hybRows, hybShares = m1, shares
				}
			}
		}

		// Gather dependency spans once; bookings start after them.
		depSpan := sim.Span{Start: readyAt, End: readyAt}

		var sp sim.Span
		var end sim.Time
		var gpuTail sim.Time
		var device string
		hybChosen := hybRows > 0 && hybEst < gpuEst && hybEst <= cpuEst
		if gpuOK && !hybChosen && gpuEst <= cpuEst {
			device = "gpu"
			// Uploads for reads not yet resident; resident reads are skips.
			keep := make(map[string]bool, len(t.Accesses))
			for _, a := range t.Accesses {
				keep[a.H.name] = true
			}
			// The fresh working set decides streaming semantics on both
			// sides: an oversized written set streams through the bounded
			// window (host copy authoritative), an oversized upload set gates
			// the launch on a head window only and streams the rest in under
			// the kernel as it sweeps rows in order.
			var readFresh, rwFresh, wrFresh int64
			for _, a := range t.Accesses {
				if _, ok := resident[a.H.name]; ok {
					continue
				}
				switch a.Mode {
				case Read:
					readFresh += a.H.bytes
				case ReadWrite:
					rwFresh += a.H.bytes
					wrFresh += a.H.bytes
				case Write:
					wrFresh += a.H.bytes
				}
			}
			gate, upRest, downBytes, rStream, wStream := streamPlan(readFresh, rwFresh, wrFresh, streamWindow)
			deps := []sim.Span{depSpan}
			var lateUp []*Handle // fresh reads riding the in-stream under the kernel
			for _, a := range t.Accesses {
				if a.Mode == Write {
					continue
				}
				if re, ok := resident[a.H.name]; ok {
					lruTick++
					re.lru = lruTick
					rep.BytesSkipped += re.bytes
					deps = append(deps, re.sp)
					continue
				}
				if wStream && a.Mode == ReadWrite {
					continue // streams through the window instead
				}
				if rStream {
					// Uploaded under the kernel after the head gate;
					// registered resident once the stream span is known.
					lateUp = append(lateUp, a.H)
					continue
				}
				evictFor(a.H.bytes, keep)
				up := dev.UploadBytes(a.H.bytes, readyAt)
				rep.BytesIn += a.H.bytes
				lruTick++
				resident[a.H.name] = &residentEntry{bytes: a.H.bytes, sp: up, lru: lruTick}
				memInUse += a.H.bytes
				deps = append(deps, up)
			}
			if !wStream {
				// Write-only outputs still occupy device memory.
				for _, a := range t.Accesses {
					if a.Mode != Write {
						continue
					}
					if _, ok := resident[a.H.name]; !ok {
						evictFor(a.H.bytes, keep)
						lruTick++
						resident[a.H.name] = &residentEntry{bytes: a.H.bytes, lru: lruTick}
						memInUse += a.H.bytes
					}
				}
			}
			if !rStream && !wStream {
				sp = dev.Kernel(t.Name, t.Costs.GPUSeconds(), deps...)
				s.rates.Observe(t.Codelet, true, t.Flops, sp.Duration())
			} else {
				// The head gates the launch; the rest of the inbound stream
				// and the whole outbound stream ride the DMA engine under
				// the kernel, and the task ends only once the last window
				// has drained.
				var head int64
				if rStream {
					head = gate
					rep.BytesIn += readFresh + rwFresh
				} else {
					head = gate - readFresh // fresh reads already booked above
					rep.BytesIn += rwFresh
				}
				if head > 0 {
					up := dev.UploadBytes(head, readyAt)
					deps = append(deps, up)
				}
				if wStream {
					evictFor(streamWindow, keep)
					memInUse += streamWindow
				}
				sp = dev.Kernel(t.Name, t.Costs.GPUSeconds(), deps...)
				gpuTail = sp.End
				var restSp sim.Span
				if upRest > 0 {
					restSp = dev.UploadBytes(upRest, sp.Start)
					if restSp.End > gpuTail {
						gpuTail = restSp.End
					}
				}
				if downBytes > 0 {
					down := dev.DownloadBytes(downBytes, sp.Start)
					rep.BytesOut += downBytes
					if down.End > gpuTail {
						gpuTail = down.End
					}
				}
				if wStream {
					memInUse -= streamWindow
				}
				// Deferred fresh reads are resident once the in-stream
				// drains; later readers wait on that span, not the kernel.
				for _, hd := range lateUp {
					evictFor(hd.bytes, keep)
					lruTick++
					resident[hd.name] = &residentEntry{bytes: hd.bytes, sp: restSp, lru: lruTick}
					memInUse += hd.bytes
				}
				measured := sp.Duration()
				if ss := dev.TransferModel().Seconds(upRest + downBytes); ss > measured {
					measured = ss
				}
				s.rates.Observe(t.Codelet, true, t.Flops, measured)
			}
			// Written handles that are device-resident are now newer than
			// the host; streamed shares already drained, so the host copy
			// stays authoritative for them.
			for _, a := range t.Accesses {
				if a.Mode == Read {
					continue
				}
				re, ok := resident[a.H.name]
				if !ok {
					continue
				}
				lruTick++
				re.lru = lruTick
				re.sp = sp
				re.dirty = true
			}
			rep.TasksGPU++
		} else if hybChosen {
			h := t.Hybrid
			m1 := hybRows
			device = fmt.Sprintf("hyb(g%d)", m1)
			keep := make(map[string]bool, len(t.Accesses))
			for _, a := range t.Accesses {
				keep[a.H.name] = true
			}
			deps := []sim.Span{depSpan}
			hostReady := readyAt

			fracOf := func(bytes int64) int64 {
				return bytes * int64(m1) / int64(h.Rows)
			}
			// The fresh working set decides streaming semantics exactly like
			// the whole-GPU body: reads are needed whole (unless the codelet
			// declares them row-local), written shares are row-split.
			var readFresh, rwFresh, wrFresh int64
			for _, a := range t.Accesses {
				if _, ok := resident[a.H.name]; ok {
					continue
				}
				switch a.Mode {
				case Read:
					if h.SplitReads {
						readFresh += fracOf(a.H.bytes)
					} else {
						readFresh += a.H.bytes
					}
				case ReadWrite:
					fb := fracOf(a.H.bytes)
					rwFresh += fb
					wrFresh += fb
				case Write:
					wrFresh += fracOf(a.H.bytes)
				}
			}
			gate, upRest, downBytes, rStream, wStream := streamPlan(readFresh, rwFresh, wrFresh, streamWindow)
			var lateUp []*Handle // fresh reads riding the in-stream under the kernel
			var transientBytes int64

			// Pure reads are needed whole on both sides: on the device for
			// the kernel (cacheable, exactly like the GPU body) and current
			// on the host for the core slabs — a device-dirty read streams
			// back first. SplitReads codelets upload only the device rows'
			// share of each fresh read; the partial copy is transient
			// occupancy, never registered resident.
			for _, a := range t.Accesses {
				if a.Mode != Read {
					continue
				}
				if re, ok := resident[a.H.name]; ok {
					if re.dirty {
						down := dev.DownloadBytes(re.bytes, re.sp.End)
						rep.BytesOut += re.bytes
						re.dirty = false
						re.sp = down
						if down.End > hostReady {
							hostReady = down.End
						}
					}
					lruTick++
					re.lru = lruTick
					rep.BytesSkipped += re.bytes
					deps = append(deps, re.sp)
					continue
				}
				if h.SplitReads {
					fb := fracOf(a.H.bytes)
					evictFor(fb, keep)
					memInUse += fb
					transientBytes += fb
					if !rStream {
						// Fractional head share, booked individually; under
						// rStream the bytes ride the in-stream instead (the
						// head gate already counts the fractional readFresh).
						up := dev.UploadBytes(fb, readyAt)
						rep.BytesIn += fb
						deps = append(deps, up)
					}
					continue
				}
				if rStream {
					// Uploaded under the kernel after the head gate;
					// registered resident once the stream span is known.
					lateUp = append(lateUp, a.H)
					continue
				}
				evictFor(a.H.bytes, keep)
				up := dev.UploadBytes(a.H.bytes, readyAt)
				rep.BytesIn += a.H.bytes
				lruTick++
				resident[a.H.name] = &residentEntry{bytes: a.H.bytes, sp: up, lru: lruTick}
				memInUse += a.H.bytes
				deps = append(deps, up)
			}

			// Written handles are row-split: the device owns its share only
			// for the duration of the task (the join downloads it, leaving
			// the host copy authoritative). An existing resident copy serves
			// the device rows in place but goes stale at the join. Both
			// kinds of device occupancy — the transient row share and the
			// whole stale copy — stay charged to the working-set guard until
			// the booking completes, so a tile touched from both devices is
			// counted once and exactly as long as it actually occupies
			// memory.
			var stale []string
			for _, a := range t.Accesses {
				if a.Mode == Read {
					continue
				}
				fb := fracOf(a.H.bytes)
				if re, ok := resident[a.H.name]; ok {
					if re.dirty && a.Mode == ReadWrite {
						// The host half updates rows whose only current copy
						// is on the device: write it back before starting.
						down := dev.DownloadBytes(re.bytes, re.sp.End)
						rep.BytesOut += re.bytes
						re.dirty = false
						re.sp = down
						if down.End > hostReady {
							hostReady = down.End
						}
					}
					if a.Mode == ReadWrite {
						rep.BytesSkipped += fb
					}
					lruTick++
					re.lru = lruTick
					deps = append(deps, re.sp)
					stale = append(stale, a.H.name)
					continue
				}
				if wStream {
					continue // streams through the window instead
				}
				evictFor(fb, keep)
				if a.Mode == ReadWrite && !rStream {
					up := dev.UploadBytes(fb, hostReady)
					rep.BytesIn += fb
					deps = append(deps, up)
				}
				memInUse += fb
				transientBytes += fb
			}
			if rStream || wStream {
				var head int64
				if rStream {
					head = gate
					rep.BytesIn += readFresh + rwFresh
				} else {
					head = gate - readFresh // fresh reads already booked above
					rep.BytesIn += rwFresh
				}
				if head > 0 {
					up := dev.UploadBytes(head, hostReady)
					deps = append(deps, up)
				}
				if wStream {
					evictFor(streamWindow, keep)
					memInUse += streamWindow
					transientBytes += streamWindow
				}
			}

			sp = dev.Kernel(t.Name, h.GPUSeconds(m1), deps...)

			// Join: the device's rows of every written handle stream back —
			// under the kernel for the streamed share, at the drain for
			// held shares and in-place updates of stale resident copies.
			gpuEnd := sp.End
			var restSp sim.Span
			if upRest > 0 {
				restSp = dev.UploadBytes(upRest, sp.Start)
				if restSp.End > gpuEnd {
					gpuEnd = restSp.End
				}
			}
			if downBytes > 0 {
				down := dev.DownloadBytes(downBytes, sp.Start)
				rep.BytesOut += downBytes
				if down.End > gpuEnd {
					gpuEnd = down.End
				}
			}
			// Deferred fresh reads are resident once the in-stream drains;
			// later readers wait on that span, not the kernel.
			for _, hd := range lateUp {
				evictFor(hd.bytes, keep)
				lruTick++
				resident[hd.name] = &residentEntry{bytes: hd.bytes, sp: restSp, lru: lruTick}
				memInUse += hd.bytes
			}
			for _, a := range t.Accesses {
				if a.Mode == Read {
					continue
				}
				if wStream {
					if _, ok := resident[a.H.name]; !ok {
						continue // already streamed back under the kernel
					}
				}
				fb := fracOf(a.H.bytes)
				down := dev.DownloadBytes(fb, sp.End)
				rep.BytesOut += fb
				if down.End > gpuEnd {
					gpuEnd = down.End
				}
			}

			// Host half: the remaining rows shared across the cores.
			cpuEnd := hostReady
			maxSlice := sim.Time(0)
			coreWorks := make([]float64, len(cores))
			coreTimes := make([]float64, len(cores))
			for ci, rc := range hybShares {
				if rc == 0 {
					continue
				}
				ssp := cores[ci].Work(fmt.Sprintf("%s+c%d", t.Name, ci), h.CPUSeconds(rc), hostReady)
				coreWorks[ci] = t.Flops * float64(rc) / float64(h.Rows)
				coreTimes[ci] = float64(ssp.End - ssp.Start)
				if d := ssp.End - ssp.Start; d > maxSlice {
					maxSlice = d
				}
				if ssp.End > cpuEnd {
					cpuEnd = ssp.End
				}
			}

			// Release the device occupancy the split held: transient row
			// shares and copies the host half just made stale.
			memInUse -= transientBytes
			for _, name := range stale {
				if re, ok := resident[name]; ok {
					memInUse -= re.bytes
					delete(resident, name)
				}
			}

			end = gpuEnd
			if cpuEnd > end {
				end = cpuEnd
			}
			// Feed back the intrinsic parallel compute time — the quantity
			// the candidate rank predicts. Queue skew between the kernel
			// start and the core slabs, and the join drain riding the DMA
			// timeline, both stay out on both sides of the estimate.
			tg := sp.Duration()
			if upRest+downBytes > 0 {
				if ss := dev.TransferModel().Seconds(upRest + downBytes); ss > tg {
					tg = ss
				}
			}
			measured := tg
			if h.FillSkew {
				// Match the estimate's kernel-start frame.
				if d := cpuEnd - sp.Start; d > measured {
					measured = d
				}
			} else if maxSlice > measured {
				measured = maxSlice
			}
			s.rates.ObserveClass(t.Codelet, ClassHyb, t.Flops, measured)
			// The oracle's tc is normalized by the participating-core
			// fraction: a split that dropped busy cores measured only part of
			// the element's CPU capacity, and feeding the raw slab time would
			// teach database_g a ratio that ping-pongs between the full-core
			// and reduced-core regimes instead of the machine's actual
			// GPU:CPU capacity (the dropping mechanism already rescales the
			// row shares deterministically at the next placement).
			nUsed := 0
			for _, rc := range hybShares {
				if rc > 0 {
					nUsed++
				}
			}
			tcOracle := maxSlice
			if h.FillSkew && cpuEnd > hostReady {
				// Skew-filled slabs start before the kernel; measure them in
				// the kernel-start frame so a synchronized join reads as
				// tc == tg and the oracle keeps the capacity balance instead
				// of re-learning the skew the scheduler already fills.
				tcOracle = cpuEnd - sp.Start
				if tcOracle <= 0 {
					tcOracle = maxSlice
				}
			}
			if nUsed > 0 && nUsed < len(cores) {
				tcOracle = tcOracle * sim.Time(nUsed) / sim.Time(len(cores))
			}
			if h.Observe != nil {
				h.Observe(float64(m1)/float64(h.Rows), float64(tg), float64(tcOracle), coreWorks, coreTimes)
			}
			if s.opts.Verify && (t.Shape[0] > 0 || t.Shape[1] > 0) {
				end = s.verifyHybrid(t, m1, sp, gpuEnd, cpuEnd, &rep)
			}
			rep.TasksHyb++
		} else {
			core := cores[bestCore]
			device = fmt.Sprintf("cpu%d", bestCore)
			// Host readers of device-dirty handles wait for the download.
			start := readyAt
			for _, a := range t.Accesses {
				if a.Mode == Write {
					continue
				}
				if re, ok := resident[a.H.name]; ok && re.dirty {
					down := dev.DownloadBytes(re.bytes, re.sp.End)
					rep.BytesOut += re.bytes
					re.dirty = false
					re.sp = down
					if down.End > start {
						start = down.End
					}
				}
			}
			sp = core.Work(t.Name, t.Costs.CPUSeconds(), start)
			s.rates.Observe(t.Codelet, false, t.Flops, sp.Duration())
			// A host write invalidates any device copy.
			for _, a := range t.Accesses {
				if a.Mode == Read {
					continue
				}
				if re, ok := resident[a.H.name]; ok {
					memInUse -= re.bytes
					delete(resident, a.H.name)
				}
			}
			rep.TasksCPU++
		}

		if !hybChosen {
			end = sp.End
			if gpuTail > end {
				end = gpuTail
			}
			if device == "gpu" && s.opts.Verify && (t.Shape[0] > 0 || t.Shape[1] > 0) {
				end = s.verifyTask(t, sim.Span{Start: sp.Start, End: end}, &rep)
			}
		}
		finish[t.id] = end
		if end > rep.End {
			rep.End = end
		}
		rep.TaskSpans = append(rep.TaskSpans, TaskSpan{
			Name: t.Name, Codelet: t.Codelet, Device: device, Start: sp.Start, End: end,
		})

		for _, c := range children[t.id] {
			indeg[c]--
			if indeg[c] == 0 {
				ra := earliest
				for _, d := range tasks[c].deps {
					if finish[d] > ra {
						ra = finish[d]
					}
				}
				heap.Push(ready, readyItem{id: c, priority: tasks[c].Priority, readyAt: ra})
			}
		}
	}

	// Final drain: handles whose only up-to-date copy lives on the device
	// stream back so the host state is complete, in residency order.
	type drain struct {
		lru   int
		bytes int64
		at    sim.Time
	}
	var drains []drain
	for _, re := range resident {
		if re.dirty {
			drains = append(drains, drain{lru: re.lru, bytes: re.bytes, at: re.sp.End})
		}
	}
	sort.Slice(drains, func(i, j int) bool { return drains[i].lru < drains[j].lru })
	for _, d := range drains {
		sp := dev.DownloadBytes(d.bytes, d.at)
		rep.BytesOut += d.bytes
		if sp.End > rep.End {
			rep.End = sp.End
		}
	}

	s.runBodies(tasks, children)

	if pr := s.probes; pr != nil {
		pr.tasks.Add(int64(rep.Tasks))
		pr.tasksGPU.Add(int64(rep.TasksGPU))
		pr.tasksCPU.Add(int64(rep.TasksCPU))
		pr.tasksHyb.Add(int64(rep.TasksHyb))
		pr.flops.Add(int64(rep.Flops))
		pr.bytesIn.Add(rep.BytesIn)
		pr.bytesOut.Add(rep.BytesOut)
		pr.bytesSkipped.Add(rep.BytesSkipped)
		pr.makespan.Set(rep.End - rep.Start)
		if s.opts.Verify {
			pr.sdcProbes()
			pr.sdcDetected.Add(int64(rep.SDCDetected))
			pr.sdcCorr.Add(int64(rep.SDCCorrected))
			pr.sdcEscal.Add(int64(rep.SDCEscalated))
			pr.verifySeconds.Add(rep.VerifySeconds)
		}
	}
	return rep, nil
}

// verifyTask books the ABFT check of one GPU task at its drain and resolves
// any SDC strike: a localizable single-element corruption re-books just this
// task's kernel (plus a re-verify), an unlocalizable one counts as an
// escalation for the caller's checkpoint machinery. Strikes are drawn from
// the per-task streams keyed by the scheduler-lifetime sequence number, so
// they depend only on (seed, drain order).
func (s *Scheduler) verifyTask(t *Task, kernel sim.Span, rep *Report) sim.Time {
	m, nn, k := t.Shape[0], t.Shape[1], t.Shape[2]
	ver := abft.VerifySeconds(m, nn, k)
	end := kernel.End + ver
	rep.VerifySeconds += ver
	seq := s.taskSeq
	s.taskSeq++
	if pr := s.probes; pr != nil {
		pr.sdcProbes()
		pr.tracer.Span("taskgraph.abft", "abft", "verify "+t.Name, kernel.End, end)
	}
	hit, struck := s.opts.SDC.SDCTask(seq, kernel.End, m, nn)
	if !struck {
		return end
	}
	rep.SDCDetected++
	if abft.Classify(hit.Faults, hit.InChecksum) == abft.Escalate {
		rep.SDCEscalated++
		if pr := s.probes; pr != nil {
			pr.tracer.Instant("taskgraph.abft", "abft", "sdc.escalate "+t.Name, end)
		}
		return end
	}
	redo := s.el.GPU.Kernel(t.Name+"~redo", t.Costs.GPUSeconds(), sim.Span{Start: end, End: end})
	end = redo.End + ver
	rep.VerifySeconds += ver
	rep.SDCCorrected++
	rep.RecomputedTasks++
	if pr := s.probes; pr != nil {
		pr.tracer.Instant("taskgraph.abft", "abft", "sdc.recompute "+t.Name, end)
	}
	return end
}

// verifyHybrid books the ABFT checks of a split task at its join: the device
// half is verified at its drain with the same strike geometry as a whole-GPU
// task, shaped to its row share, while the host half's checksum only costs
// time — ECC'd host memory is never struck, mirroring the hybrid runner. A
// localizable strike re-books just the device half's kernel.
func (s *Scheduler) verifyHybrid(t *Task, m1 int, kernel sim.Span, gpuEnd, cpuEnd sim.Time, rep *Report) sim.Time {
	nn, k := t.Shape[1], t.Shape[2]
	m2 := t.Hybrid.Rows - m1
	verG := abft.VerifySeconds(m1, nn, k)
	verC := abft.VerifySeconds(m2, nn, k)
	gEnd := gpuEnd + verG
	cEnd := cpuEnd + verC
	rep.VerifySeconds += verG + verC
	seq := s.taskSeq
	s.taskSeq++
	if pr := s.probes; pr != nil {
		pr.sdcProbes()
		pr.tracer.Span("taskgraph.abft", "abft", "verify "+t.Name, gpuEnd, gEnd)
	}
	end := gEnd
	if cEnd > end {
		end = cEnd
	}
	hit, struck := s.opts.SDC.SDCTask(seq, gpuEnd, m1, nn)
	if !struck {
		return end
	}
	rep.SDCDetected++
	if abft.Classify(hit.Faults, hit.InChecksum) == abft.Escalate {
		rep.SDCEscalated++
		if pr := s.probes; pr != nil {
			pr.tracer.Instant("taskgraph.abft", "abft", "sdc.escalate "+t.Name, end)
		}
		return end
	}
	redo := s.el.GPU.Kernel(t.Name+"~redo", t.Hybrid.GPUSeconds(m1), sim.Span{Start: gEnd, End: gEnd})
	rEnd := redo.End + verG
	rep.VerifySeconds += verG
	rep.SDCCorrected++
	rep.RecomputedTasks++
	if pr := s.probes; pr != nil {
		pr.tracer.Instant("taskgraph.abft", "abft", "sdc.recompute "+t.Name, rEnd)
	}
	if rEnd > end {
		end = rEnd
	}
	return end
}

// streamPlan decides the transfer shape of a task's fresh working set against
// the bounded stream window. gate is the upload that must land before the
// kernel launches, upRest the inbound stream overlapped with the kernel, and
// down the outbound stream riding under it. rStream reports an oversized
// upload set (fresh reads plus in-place updates): only a head window gates the
// launch and the rest streams in as the kernel sweeps rows in order. wStream
// reports an oversized written set: it cannot become resident, so it cycles
// through the window and the host copy stays authoritative. The two compose —
// a trailing-update slab typically overflows both sides at once.
func streamPlan(readFresh, rwFresh, wrFresh, window int64) (gate, upRest, down int64, rStream, wStream bool) {
	upFresh := readFresh + rwFresh
	rStream = upFresh > window
	wStream = wrFresh > window
	switch {
	case rStream:
		gate = window / 2
		upRest = upFresh - gate
	case wStream:
		head := min(rwFresh, window/2)
		gate = readFresh + head
		upRest = rwFresh - head
	default:
		gate = upFresh
	}
	if wStream {
		down = wrFresh
	}
	return gate, upRest, down, rStream, wStream
}

// allocRows distributes total rows across shares by largest remainder, the
// same deterministic rule the hybrid runner uses for its level-2 per-core
// split.
func allocRows(total int, fracs []float64) []int {
	n := len(fracs)
	out := make([]int, n)
	if total == 0 || n == 0 {
		return out
	}
	var sum float64
	for _, f := range fracs {
		sum += f
	}
	if sum <= 0 {
		out[0] = total
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, f := range fracs {
		exact := float64(total) * f / sum
		out[i] = int(exact)
		assigned += out[i]
		rems[i] = rem{idx: i, frac: exact - float64(out[i])}
	}
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		out[rems[best].idx]++
		rems[best].frac--
		assigned++
	}
	return out
}

// runBodies executes the real host bodies. Serial mode walks the placement
// order (a topological order); parallel mode runs a worker pool over the
// dependency DAG. Bodies write disjoint declared handles, so both orders
// produce bit-identical data.
func (s *Scheduler) runBodies(tasks []*Task, children [][]int) {
	any := false
	for _, t := range tasks {
		if t.Run != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	if s.opts.Par <= 1 {
		for _, t := range tasks {
			if t.Run != nil {
				t.Run()
			}
		}
		return
	}
	n := len(tasks)
	indeg := make([]int, n)
	for _, t := range tasks {
		indeg[t.id] = len(t.deps)
	}
	queue := make(chan int, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	// Seed the roots before any worker starts, so the indegree slice is
	// touched by exactly one goroutine at a time (workers under mu).
	for _, t := range tasks {
		if indeg[t.id] == 0 {
			queue <- t.id
		}
	}
	workers := s.opts.Par
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		go func() {
			for id := range queue {
				if fn := tasks[id].Run; fn != nil {
					fn()
				}
				mu.Lock()
				for _, c := range children[id] {
					indeg[c]--
					if indeg[c] == 0 {
						queue <- c // buffered to n: never blocks
					}
				}
				mu.Unlock()
				wg.Done()
			}
		}()
	}
	wg.Wait()
	close(queue)
}

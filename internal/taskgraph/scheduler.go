package taskgraph

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"tianhe/internal/abft"
	"tianhe/internal/element"
	"tianhe/internal/fault"
	"tianhe/internal/sim"
	"tianhe/internal/telemetry"
)

// Options configures a Scheduler.
type Options struct {
	// Affinity is the measured-rate database placement decisions blend with
	// the static cost models; nil builds a fresh one. Sharing one database
	// across graphs is how the runtime learns: the LU stepper feeds every
	// iteration's measurements into the next iteration's placements.
	Affinity *RateDB
	// Telemetry receives the scheduler's probes; nil disables them.
	Telemetry *telemetry.Telemetry
	// Verify enables ABFT checksum verification of every GPU task that
	// declares a Shape, at its drain, exactly like the pipeline executor.
	Verify bool
	// SDC is the injector consulted for corruption strikes at each verified
	// drain (nil: verification runs, nothing strikes).
	SDC *fault.Injector
	// GPUFallback makes the scheduler resilient to device loss: tasks place
	// CPU-only while the hardware is gone (quarantining the affinity
	// database's GPU side), and recovery books the context re-init and
	// re-warms with RewarmHalfLife. Without it a dead context stalls the run,
	// like every fault-unaware runtime.
	GPUFallback    bool
	RewarmHalfLife float64
	// Par is the host worker count real task bodies execute on; <= 1 runs
	// them serially in schedule order. Placement and every booking are
	// serial regardless, so timing is byte-identical across Par values, and
	// bodies write disjoint declared handles, so data is too.
	Par int
}

// TaskSpan records one placed task for traces and goldens.
type TaskSpan struct {
	// Name and Codelet identify the task; Device is "gpu" or "cpuN".
	Name, Codelet, Device string
	// Start and End bound the task's execution booking (ABFT verification
	// and recompute extensions included in End).
	Start, End sim.Time
}

// Report summarizes one scheduled graph.
type Report struct {
	// Start and End bound the whole graph in virtual time (final dirty-handle
	// drain included).
	Start, End sim.Time
	// Tasks counts the graph's tasks; TasksGPU/TasksCPU the placement split.
	Tasks, TasksGPU, TasksCPU int
	// Flops is the summed task work.
	Flops float64
	// BytesIn/BytesOut are the booked transfer volumes; BytesSkipped counts
	// reads served from device residency.
	BytesIn, BytesOut, BytesSkipped int64
	// SDC/ABFT outcome counters, as in the pipeline report.
	SDCDetected, SDCCorrected, SDCEscalated, RecomputedTasks int
	// VerifySeconds is the host checksum time, included in End.
	VerifySeconds float64
	// Stalled reports a fault-unaware scheduler hitting a dead GPU context:
	// nothing past that submission executed.
	Stalled bool
	// TaskSpans lists every task in schedule order.
	TaskSpans []TaskSpan
}

// Seconds returns the end-to-end virtual duration.
func (r Report) Seconds() float64 { return r.End - r.Start }

// GFLOPS returns the achieved rate.
func (r Report) GFLOPS() float64 {
	s := r.Seconds()
	if s <= 0 {
		return 0
	}
	return r.Flops / s / 1e9
}

// Span returns the recorded span of the named task; ok is false when the
// task was not scheduled (stalled run).
func (r Report) Span(name string) (TaskSpan, bool) {
	for _, ts := range r.TaskSpans {
		if ts.Name == name {
			return ts, true
		}
	}
	return TaskSpan{}, false
}

// schedProbes holds the scheduler's metric handles, fetched once.
type schedProbes struct {
	tasks, tasksGPU, tasksCPU       *telemetry.Counter
	flops                           *telemetry.Counter
	bytesIn, bytesOut, bytesSkipped *telemetry.Counter
	makespan                        *telemetry.Gauge
	tracer                          *telemetry.Tracer

	// ABFT probes, registered lazily on the first verified task so metric
	// dumps of unverified runs stay byte-identical.
	tel                            *telemetry.Telemetry
	sdcDetected, sdcCorr, sdcEscal *telemetry.Counter
	verifySeconds                  *telemetry.Gauge
}

func (pr *schedProbes) sdcProbes() {
	if pr.sdcDetected != nil {
		return
	}
	pr.sdcDetected = pr.tel.Counter("taskgraph.sdc.detected")
	pr.sdcCorr = pr.tel.Counter("taskgraph.sdc.corrected")
	pr.sdcEscal = pr.tel.Counter("taskgraph.sdc.escalated")
	pr.verifySeconds = pr.tel.Gauge("taskgraph.abft.verify_seconds")
}

func newSchedProbes(tel *telemetry.Telemetry) *schedProbes {
	if !tel.Enabled() {
		return nil
	}
	return &schedProbes{
		tasks:        tel.Counter("taskgraph.tasks"),
		tasksGPU:     tel.Counter("taskgraph.tasks_gpu"),
		tasksCPU:     tel.Counter("taskgraph.tasks_cpu"),
		flops:        tel.Counter("taskgraph.flops"),
		bytesIn:      tel.Counter("taskgraph.bytes_in"),
		bytesOut:     tel.Counter("taskgraph.bytes_out"),
		bytesSkipped: tel.Counter("taskgraph.bytes_skipped"),
		makespan:     tel.Gauge("taskgraph.makespan_seconds"),
		tracer:       tel.Trace,
		tel:          tel,
	}
}

// Scheduler places graphs on one compute element. It persists across graphs:
// the affinity database, the SDC task counter, and the fault state carry
// from one Run to the next, which is what lets the per-iteration LU graphs
// behave like one long adaptive run.
type Scheduler struct {
	el     *element.Element
	opts   Options
	rates  *RateDB
	probes *schedProbes

	gpuDown bool
	taskSeq int
}

// NewScheduler builds a scheduler over the element.
func NewScheduler(el *element.Element, opts Options) *Scheduler {
	if opts.Affinity == nil {
		opts.Affinity = NewRateDB()
	}
	return &Scheduler{
		el:     el,
		opts:   opts,
		rates:  opts.Affinity,
		probes: newSchedProbes(opts.Telemetry),
	}
}

// Rates returns the affinity database (for checkpointing and tests).
func (s *Scheduler) Rates() *RateDB { return s.rates }

// TaskSeq returns the global verified-task counter that keys the SDC
// injector's per-task decision streams.
func (s *Scheduler) TaskSeq() int { return s.taskSeq }

// SetTaskSeq restores the counter from a checkpoint.
func (s *Scheduler) SetTaskSeq(n int) { s.taskSeq = n }

// readyItem is one schedulable task in the priority queue.
type readyItem struct {
	id       int
	priority int
	readyAt  sim.Time
}

// readyHeap orders by (-priority, readyAt, id): critical-path tasks first,
// then earliest-ready, with the creation index as the deterministic
// tie-breaker.
type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	//lint:ignore floateq exact ready-time ties must fall through to the id tie-breaker for a total order
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// residentEntry tracks one handle cached in device memory.
type residentEntry struct {
	bytes int64
	sp    sim.Span // the booking that produced the device copy
	dirty bool     // device copy newer than host
	lru   int
}

// Run schedules and executes the graph, with no task starting before
// earliest. Placement is a serial deterministic list-scheduling loop; real
// host bodies then execute (serially or on Options.Par workers) in an order
// consistent with the dependency DAG.
func (s *Scheduler) Run(g *Graph, earliest sim.Time) (Report, error) {
	if err := g.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Start: earliest, End: earliest, Tasks: g.Len()}
	tasks := g.Tasks()

	// Dependency bookkeeping.
	n := len(tasks)
	indeg := make([]int, n)
	children := make([][]int, n)
	for _, t := range tasks {
		indeg[t.id] = len(t.deps)
		for _, d := range t.deps {
			children[d] = append(children[d], t.id)
		}
	}
	finish := make([]sim.Time, n)

	ready := &readyHeap{}
	for _, t := range tasks {
		if indeg[t.id] == 0 {
			heap.Push(ready, readyItem{id: t.id, priority: t.Priority, readyAt: earliest})
		}
	}

	// Device residency, keyed by handle name; fresh per Run so a graph's
	// timing never depends on what an earlier graph left in device memory
	// (checkpoint restores replay bit-identically).
	resident := make(map[string]*residentEntry)
	lruTick := 0
	var memInUse int64
	dev := s.el.GPU
	cores := s.el.CPU.Cores()

	dropResidency := func() {
		resident = make(map[string]*residentEntry)
		memInUse = 0
	}

	evictFor := func(need int64, keep map[string]bool) {
		for memInUse+need > dev.MemBytes() {
			victim := ""
			best := int(^uint(0) >> 1)
			for name, re := range resident {
				if keep[name] {
					continue
				}
				if re.lru < best {
					best, victim = re.lru, name
				}
			}
			if victim == "" {
				panic(fmt.Sprintf("taskgraph: working set of %d bytes exceeds device memory %d", need, dev.MemBytes()))
			}
			re := resident[victim]
			if re.dirty {
				// The only device copy is newer than the host: write it back
				// before dropping it.
				sp := dev.DownloadBytes(re.bytes, re.sp.End)
				rep.BytesOut += re.bytes
				if sp.End > rep.End {
					rep.End = sp.End
				}
			}
			memInUse -= re.bytes
			delete(resident, victim)
		}
	}

	// admitGPU applies device-health admission control before a GPU
	// placement, mirroring the hybrid runner: fault-unaware schedulers stall
	// on a dead context; fault-aware ones fall back to CPU during the outage
	// (quarantining the affinity database's GPU rates and dropping the lost
	// device memory) and re-init + re-warm once the hardware answers.
	admitGPU := func(at sim.Time) (ok, stalled bool) {
		if dev.Health() == nil || !dev.ContextDead(at) {
			return true, false
		}
		if !s.opts.GPUFallback {
			return false, true
		}
		if dev.AvailableAt(at) {
			sp := dev.Reinit(at)
			dev.DMA.AdvanceTo(sp.End)
			// The re-created context starts with empty device memory.
			dropResidency()
			s.gpuDown = false
			s.rates.Rewarm(s.opts.RewarmHalfLife)
			if pr := s.probes; pr != nil {
				pr.tracer.Instant("taskgraph.fault", "fault", "gpu.reinit", sp.End)
			}
			return true, false
		}
		if !s.gpuDown {
			s.gpuDown = true
			s.rates.Quarantine()
			dropResidency()
			if pr := s.probes; pr != nil {
				pr.tracer.Instant("taskgraph.fault", "fault", "gpu.fallback", at)
			}
		}
		return false, false
	}

	for ready.Len() > 0 {
		it := heap.Pop(ready).(readyItem)
		t := tasks[it.id]
		readyAt := it.readyAt
		rep.Flops += t.Flops

		// Candidate devices. A GPU-only task during an outage waits for the
		// hardware to answer again (its readiness moves to the restore time,
		// where admission re-inits the context).
		gpuOK := t.Costs.GPUSeconds != nil
		cpuOK := t.Costs.CPUSeconds != nil
		if gpuOK && dev.Health() != nil && dev.ContextDead(readyAt) {
			at := readyAt
			if !cpuOK && !dev.AvailableAt(at) && s.opts.GPUFallback {
				at = dev.Health().RestoredAt(at)
				readyAt = at
			}
			ok, stalled := admitGPU(at)
			if stalled {
				rep.Stalled = true
				if pr := s.probes; pr != nil {
					pr.tracer.Instant("taskgraph.fault", "fault", "gpu.stall", readyAt)
				}
				return rep, nil
			}
			gpuOK = ok
		}
		if !gpuOK && !cpuOK {
			panic(fmt.Sprintf("taskgraph: task %q has no runnable device variant", t.Name))
		}

		// Estimate both placements, blending models with measured rates.
		const never = 1e30
		gpuEst, cpuEst := sim.Time(never), sim.Time(never)
		bestCore := -1
		if gpuOK {
			var freshBytes int64
			for _, a := range t.Accesses {
				if a.Mode == Write {
					continue
				}
				if _, ok := resident[a.H.name]; !ok {
					freshBytes += a.H.bytes
				}
			}
			xfer := dev.TransferModel().Seconds(freshBytes)
			start := dev.Queue.Available()
			if readyAt > start {
				start = readyAt
			}
			dmaDone := dev.DMA.Available()
			if readyAt > dmaDone {
				dmaDone = readyAt
			}
			dmaDone += xfer
			if dmaDone > start {
				start = dmaDone
			}
			gpuEst = start + s.rates.Estimate(t.Codelet, true, t.Flops, t.Costs.GPUSeconds())
		}
		if cpuOK {
			est := s.rates.Estimate(t.Codelet, false, t.Flops, t.Costs.CPUSeconds())
			for ci, core := range cores {
				st := core.TL.Available()
				if readyAt > st {
					st = readyAt
				}
				if fin := st + est; fin < cpuEst {
					cpuEst, bestCore = fin, ci
				}
			}
		}

		// Gather dependency spans once; bookings start after them.
		depSpan := sim.Span{Start: readyAt, End: readyAt}

		var sp sim.Span
		var device string
		if gpuOK && gpuEst <= cpuEst {
			device = "gpu"
			// Uploads for reads not yet resident; resident reads are skips.
			keep := make(map[string]bool, len(t.Accesses))
			for _, a := range t.Accesses {
				keep[a.H.name] = true
			}
			deps := []sim.Span{depSpan}
			for _, a := range t.Accesses {
				if a.Mode == Write {
					continue
				}
				if re, ok := resident[a.H.name]; ok {
					lruTick++
					re.lru = lruTick
					rep.BytesSkipped += re.bytes
					deps = append(deps, re.sp)
					continue
				}
				evictFor(a.H.bytes, keep)
				up := dev.UploadBytes(a.H.bytes, readyAt)
				rep.BytesIn += a.H.bytes
				lruTick++
				resident[a.H.name] = &residentEntry{bytes: a.H.bytes, sp: up, lru: lruTick}
				memInUse += a.H.bytes
				deps = append(deps, up)
			}
			// Write-only outputs still occupy device memory.
			for _, a := range t.Accesses {
				if a.Mode != Write {
					continue
				}
				if _, ok := resident[a.H.name]; !ok {
					evictFor(a.H.bytes, keep)
					lruTick++
					resident[a.H.name] = &residentEntry{bytes: a.H.bytes, lru: lruTick}
					memInUse += a.H.bytes
				}
			}
			sp = dev.Kernel(t.Name, t.Costs.GPUSeconds(), deps...)
			s.rates.Observe(t.Codelet, true, t.Flops, sp.Duration())
			// Written handles now live on the device, newer than the host.
			for _, a := range t.Accesses {
				if a.Mode == Read {
					continue
				}
				re := resident[a.H.name]
				lruTick++
				re.lru = lruTick
				re.sp = sp
				re.dirty = true
			}
			rep.TasksGPU++
		} else {
			core := cores[bestCore]
			device = fmt.Sprintf("cpu%d", bestCore)
			// Host readers of device-dirty handles wait for the download.
			start := readyAt
			for _, a := range t.Accesses {
				if a.Mode == Write {
					continue
				}
				if re, ok := resident[a.H.name]; ok && re.dirty {
					down := dev.DownloadBytes(re.bytes, re.sp.End)
					rep.BytesOut += re.bytes
					re.dirty = false
					re.sp = down
					if down.End > start {
						start = down.End
					}
				}
			}
			sp = core.Work(t.Name, t.Costs.CPUSeconds(), start)
			s.rates.Observe(t.Codelet, false, t.Flops, sp.Duration())
			// A host write invalidates any device copy.
			for _, a := range t.Accesses {
				if a.Mode == Read {
					continue
				}
				if re, ok := resident[a.H.name]; ok {
					memInUse -= re.bytes
					delete(resident, a.H.name)
				}
			}
			rep.TasksCPU++
		}

		end := sp.End
		if device == "gpu" && s.opts.Verify && (t.Shape[0] > 0 || t.Shape[1] > 0) {
			end = s.verifyTask(t, sp, &rep)
		}
		finish[t.id] = end
		if end > rep.End {
			rep.End = end
		}
		rep.TaskSpans = append(rep.TaskSpans, TaskSpan{
			Name: t.Name, Codelet: t.Codelet, Device: device, Start: sp.Start, End: end,
		})

		for _, c := range children[t.id] {
			indeg[c]--
			if indeg[c] == 0 {
				ra := earliest
				for _, d := range tasks[c].deps {
					if finish[d] > ra {
						ra = finish[d]
					}
				}
				heap.Push(ready, readyItem{id: c, priority: tasks[c].Priority, readyAt: ra})
			}
		}
	}

	// Final drain: handles whose only up-to-date copy lives on the device
	// stream back so the host state is complete, in residency order.
	type drain struct {
		lru   int
		bytes int64
		at    sim.Time
	}
	var drains []drain
	for _, re := range resident {
		if re.dirty {
			drains = append(drains, drain{lru: re.lru, bytes: re.bytes, at: re.sp.End})
		}
	}
	sort.Slice(drains, func(i, j int) bool { return drains[i].lru < drains[j].lru })
	for _, d := range drains {
		sp := dev.DownloadBytes(d.bytes, d.at)
		rep.BytesOut += d.bytes
		if sp.End > rep.End {
			rep.End = sp.End
		}
	}

	s.runBodies(tasks, children)

	if pr := s.probes; pr != nil {
		pr.tasks.Add(int64(rep.Tasks))
		pr.tasksGPU.Add(int64(rep.TasksGPU))
		pr.tasksCPU.Add(int64(rep.TasksCPU))
		pr.flops.Add(int64(rep.Flops))
		pr.bytesIn.Add(rep.BytesIn)
		pr.bytesOut.Add(rep.BytesOut)
		pr.bytesSkipped.Add(rep.BytesSkipped)
		pr.makespan.Set(rep.End - rep.Start)
		if s.opts.Verify {
			pr.sdcProbes()
			pr.sdcDetected.Add(int64(rep.SDCDetected))
			pr.sdcCorr.Add(int64(rep.SDCCorrected))
			pr.sdcEscal.Add(int64(rep.SDCEscalated))
			pr.verifySeconds.Add(rep.VerifySeconds)
		}
	}
	return rep, nil
}

// verifyTask books the ABFT check of one GPU task at its drain and resolves
// any SDC strike: a localizable single-element corruption re-books just this
// task's kernel (plus a re-verify), an unlocalizable one counts as an
// escalation for the caller's checkpoint machinery. Strikes are drawn from
// the per-task streams keyed by the scheduler-lifetime sequence number, so
// they depend only on (seed, drain order).
func (s *Scheduler) verifyTask(t *Task, kernel sim.Span, rep *Report) sim.Time {
	m, nn, k := t.Shape[0], t.Shape[1], t.Shape[2]
	ver := abft.VerifySeconds(m, nn, k)
	end := kernel.End + ver
	rep.VerifySeconds += ver
	seq := s.taskSeq
	s.taskSeq++
	if pr := s.probes; pr != nil {
		pr.sdcProbes()
		pr.tracer.Span("taskgraph.abft", "abft", "verify "+t.Name, kernel.End, end)
	}
	hit, struck := s.opts.SDC.SDCTask(seq, kernel.End, m, nn)
	if !struck {
		return end
	}
	rep.SDCDetected++
	if abft.Classify(hit.Faults, hit.InChecksum) == abft.Escalate {
		rep.SDCEscalated++
		if pr := s.probes; pr != nil {
			pr.tracer.Instant("taskgraph.abft", "abft", "sdc.escalate "+t.Name, end)
		}
		return end
	}
	redo := s.el.GPU.Kernel(t.Name+"~redo", t.Costs.GPUSeconds(), sim.Span{Start: end, End: end})
	end = redo.End + ver
	rep.VerifySeconds += ver
	rep.SDCCorrected++
	rep.RecomputedTasks++
	if pr := s.probes; pr != nil {
		pr.tracer.Instant("taskgraph.abft", "abft", "sdc.recompute "+t.Name, end)
	}
	return end
}

// runBodies executes the real host bodies. Serial mode walks the placement
// order (a topological order); parallel mode runs a worker pool over the
// dependency DAG. Bodies write disjoint declared handles, so both orders
// produce bit-identical data.
func (s *Scheduler) runBodies(tasks []*Task, children [][]int) {
	any := false
	for _, t := range tasks {
		if t.Run != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	if s.opts.Par <= 1 {
		for _, t := range tasks {
			if t.Run != nil {
				t.Run()
			}
		}
		return
	}
	n := len(tasks)
	indeg := make([]int, n)
	for _, t := range tasks {
		indeg[t.id] = len(t.deps)
	}
	queue := make(chan int, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	// Seed the roots before any worker starts, so the indegree slice is
	// touched by exactly one goroutine at a time (workers under mu).
	for _, t := range tasks {
		if indeg[t.id] == 0 {
			queue <- t.id
		}
	}
	workers := s.opts.Par
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		go func() {
			for id := range queue {
				if fn := tasks[id].Run; fn != nil {
					fn()
				}
				mu.Lock()
				for _, c := range children[id] {
					indeg[c]--
					if indeg[c] == 0 {
						queue <- c // buffered to n: never blocks
					}
				}
				mu.Unlock()
				wg.Done()
			}
		}()
	}
	wg.Wait()
	close(queue)
}

package taskgraph

import (
	"reflect"
	"testing"
)

func cpuCost(s float64) Costs { return Costs{CPUSeconds: func() float64 { return s }} }

func bothCosts(c, g float64) Costs {
	return Costs{
		CPUSeconds: func() float64 { return c },
		GPUSeconds: func() float64 { return g },
	}
}

func TestDependencyInference(t *testing.T) {
	g := New()
	h := g.NewHandle("x", 100)
	o := g.NewHandle("y", 100)

	w0 := g.Add(&Task{Name: "w0", Costs: cpuCost(1), Accesses: []Access{{h, Write}}})
	r1 := g.Add(&Task{Name: "r1", Costs: cpuCost(1), Accesses: []Access{{h, Read}, {o, Write}}})
	r2 := g.Add(&Task{Name: "r2", Costs: cpuCost(1), Accesses: []Access{{h, Read}}})
	w3 := g.Add(&Task{Name: "w3", Costs: cpuCost(1), Accesses: []Access{{h, ReadWrite}}})
	r4 := g.Add(&Task{Name: "r4", Costs: cpuCost(1), Accesses: []Access{{h, Read}}})

	// RAW: both readers depend on the writer.
	if !reflect.DeepEqual(r1.Deps(), []int{w0.ID()}) {
		t.Errorf("r1 deps = %v, want [w0]", r1.Deps())
	}
	if !reflect.DeepEqual(r2.Deps(), []int{w0.ID()}) {
		t.Errorf("r2 deps = %v, want [w0]", r2.Deps())
	}
	// WAR + WAW: the next writer waits on the previous writer and all
	// readers since.
	if !reflect.DeepEqual(w3.Deps(), []int{w0.ID(), r1.ID(), r2.ID()}) {
		t.Errorf("w3 deps = %v, want [w0 r1 r2]", w3.Deps())
	}
	// The reader barrier resets after a write.
	if !reflect.DeepEqual(r4.Deps(), []int{w3.ID()}) {
		t.Errorf("r4 deps = %v, want [w3]", r4.Deps())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAfterAddsExplicitEdges(t *testing.T) {
	g := New()
	a := g.Add(&Task{Name: "a", Costs: cpuCost(1)})
	b := g.Add(&Task{Name: "b", Costs: cpuCost(1)})
	g.After(b, a, a) // duplicate collapses
	if !reflect.DeepEqual(b.Deps(), []int{a.ID()}) {
		t.Errorf("b deps = %v, want [a]", b.Deps())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	g := New()
	g.Add(&Task{Name: "dup", Costs: cpuCost(1)})
	g.Add(&Task{Name: "dup", Costs: cpuCost(1)})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate task names")
	}
}

func TestAddPanicsWithoutVariant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a task with no device variant")
		}
	}()
	New().Add(&Task{Name: "none"})
}

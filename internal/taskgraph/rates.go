package taskgraph

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
)

// rateAlpha is the EWMA weight of the newest measurement.
const rateAlpha = 0.25

// rateWarm is the observation count at which the blend weighs the measured
// rate and the model estimate equally (trust = n/(n+rateWarm)).
const rateWarm = 3.0

// deviceRate is one (codelet, device) cell: an EWMA of measured flops/second
// plus the observation count that drives the trust blend.
type deviceRate struct {
	Rate  float64 `json:"rate"`
	Count float64 `json:"count"`
}

// RateDB is the affinity database: per-codelet measured execution rates for
// the CPU and GPU variants, learned the same way database_g learns splits —
// EWMA refresh after every execution, trust-blended against the static model
// while warming, quarantined during a device outage and re-warmed with a
// configurable half-life after recovery.
type RateDB struct {
	mu  sync.Mutex
	cpu map[string]*deviceRate
	gpu map[string]*deviceRate

	// GPU fault-resilience state, mirroring adaptive.DatabaseG: while
	// quarantined, GPU observations are discarded (they describe lost
	// hardware); after Rewarm, GPU estimates blend back from the model toward
	// the learned rate as trust recovers.
	quarantined bool
	warming     bool
	trust       float64
	decay       float64
}

// NewRateDB returns an empty affinity database.
func NewRateDB() *RateDB {
	return &RateDB{
		cpu: make(map[string]*deviceRate),
		gpu: make(map[string]*deviceRate),
	}
}

func (db *RateDB) cell(gpu bool, codelet string) *deviceRate {
	m := db.cpu
	if gpu {
		m = db.gpu
	}
	r, ok := m[codelet]
	if !ok {
		r = &deviceRate{}
		m[codelet] = r
	}
	return r
}

// Observe feeds one measured execution back: flops of work finished in
// seconds on the given device. Non-finite or non-positive measurements are
// discarded, as are GPU observations while quarantined.
func (db *RateDB) Observe(codelet string, gpu bool, flops, seconds float64) {
	if flops <= 0 || seconds <= 0 || math.IsInf(flops, 1) || math.IsInf(seconds, 1) ||
		math.IsNaN(flops) || math.IsNaN(seconds) {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if gpu && db.quarantined {
		return
	}
	r := db.cell(gpu, codelet)
	rate := flops / seconds
	if r.Count == 0 {
		r.Rate = rate
	} else {
		r.Rate += rateAlpha * (rate - r.Rate)
	}
	r.Count++
	if gpu && db.warming {
		db.trust = 1 - (1-db.trust)*db.decay
		if db.trust > 0.999 {
			db.warming = false
		}
	}
}

// Estimate predicts the duration of flops of work for the codelet on the
// given device, blending the static model estimate with the measured rate by
// trust w = n/(n+warm): a cold database answers the model exactly, a warm one
// the measurement. During a GPU re-warm the measured contribution is further
// scaled by the recovering trust.
func (db *RateDB) Estimate(codelet string, gpu bool, flops, modelSeconds float64) float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := db.cpu
	if gpu {
		m = db.gpu
	}
	r, ok := m[codelet]
	if !ok || r.Count == 0 || r.Rate <= 0 || flops <= 0 {
		return modelSeconds
	}
	w := r.Count / (r.Count + rateWarm)
	if gpu && db.warming {
		w *= db.trust
	}
	return (1-w)*modelSeconds + w*flops/r.Rate
}

// Quarantine freezes the GPU side during a device outage: estimates keep
// answering (the scheduler still ranks the CPU fallback against the model),
// but GPU observations are discarded until Rewarm.
func (db *RateDB) Quarantine() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.quarantined = true
}

// Quarantined reports whether GPU observations are currently discarded.
func (db *RateDB) Quarantined() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.quarantined
}

// Rewarm lifts a quarantine after device recovery: GPU trust drops to zero
// so estimates restart from the model, and each subsequent observation
// halves the remaining distrust every halfLife observations. halfLife <= 0
// restores full trust immediately.
func (db *RateDB) Rewarm(halfLife float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.quarantined = false
	if halfLife <= 0 {
		db.warming = false
		db.trust = 1
		return
	}
	db.warming = true
	db.trust = 0
	db.decay = math.Pow(0.5, 1/halfLife)
}

type rateDBJSON struct {
	CPU map[string]deviceRate `json:"cpu"`
	GPU map[string]deviceRate `json:"gpu"`
}

// MarshalJSON serializes the learned rates (resilience state is never
// persisted — a saved database is always the healthy view). Keys marshal in
// sorted order via encoding/json, so equal databases serialize identically.
func (db *RateDB) MarshalJSON() ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	j := rateDBJSON{CPU: map[string]deviceRate{}, GPU: map[string]deviceRate{}}
	for k, v := range db.cpu {
		j.CPU[k] = *v
	}
	for k, v := range db.gpu {
		j.GPU[k] = *v
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a serialized database as a fresh healthy state.
func (db *RateDB) UnmarshalJSON(b []byte) error {
	var j rateDBJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.cpu = make(map[string]*deviceRate, len(j.CPU))
	db.gpu = make(map[string]*deviceRate, len(j.GPU))
	for k, v := range j.CPU {
		c := v
		db.cpu[k] = &c
	}
	for k, v := range j.GPU {
		c := v
		db.gpu[k] = &c
	}
	db.quarantined = false
	db.warming = false
	db.trust = 0
	db.decay = 0
	return nil
}

// Codelets returns the sorted union of codelet names with any learned rate,
// for reports and tests.
func (db *RateDB) Codelets() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	seen := map[string]bool{}
	for k := range db.cpu {
		seen[k] = true
	}
	for k := range db.gpu {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package taskgraph

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
)

// rateAlpha is the EWMA weight of the newest measurement.
const rateAlpha = 0.25

// rateWarm is the observation count at which the blend weighs the measured
// rate and the model estimate equally (trust = n/(n+rateWarm)).
const rateWarm = 3.0

// Class names one implementation variant of a codelet: the CPU body, the GPU
// body, or the hybrid body that splits one task across both. Each class has
// its own measured-rate cell per codelet, because the three run at genuinely
// different effective rates (the hybrid join rate is neither side's rate).
type Class uint8

const (
	// ClassCPU is the single-core host implementation.
	ClassCPU Class = iota
	// ClassGPU is the whole-task device implementation.
	ClassGPU
	// ClassHyb is the split implementation: GSplit rows on the device, the
	// rest across the host cores, joined at the slower side.
	ClassHyb
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassCPU:
		return "cpu"
	case ClassGPU:
		return "gpu"
	case ClassHyb:
		return "hyb"
	}
	return "?"
}

// device reports whether the class needs live GPU hardware: device classes
// are quarantined together during an outage and re-warm together after it.
func (c Class) device() bool { return c != ClassCPU }

// deviceRate is one (codelet, class) cell: an EWMA of measured flops/second
// plus the observation count that drives the trust blend.
type deviceRate struct {
	Rate  float64 `json:"rate"`
	Count float64 `json:"count"`
}

// RateDB is the affinity database: per-codelet measured execution rates for
// the CPU, GPU, and hybrid variants, learned the same way database_g learns
// splits — EWMA refresh after every execution, trust-blended against the
// static model while warming, quarantined during a device outage and
// re-warmed with a configurable half-life after recovery.
type RateDB struct {
	mu    sync.Mutex
	cells [numClasses]map[string]*deviceRate

	// GPU fault-resilience state, mirroring adaptive.DatabaseG: while
	// quarantined, device-class observations (GPU and hybrid — both describe
	// lost hardware) are discarded; after Rewarm, device estimates blend back
	// from the model toward the learned rate as trust recovers.
	quarantined bool
	warming     bool
	trust       float64
	decay       float64
}

// NewRateDB returns an empty affinity database.
func NewRateDB() *RateDB {
	db := &RateDB{}
	for c := range db.cells {
		db.cells[c] = make(map[string]*deviceRate)
	}
	return db
}

func classOf(gpu bool) Class {
	if gpu {
		return ClassGPU
	}
	return ClassCPU
}

func (db *RateDB) cell(cls Class, codelet string) *deviceRate {
	m := db.cells[cls]
	r, ok := m[codelet]
	if !ok {
		r = &deviceRate{}
		m[codelet] = r
	}
	return r
}

// Observe feeds one measured execution of the CPU or GPU variant back; the
// two-device form predates the hybrid class and forwards to ObserveClass.
func (db *RateDB) Observe(codelet string, gpu bool, flops, seconds float64) {
	db.ObserveClass(codelet, classOf(gpu), flops, seconds)
}

// ObserveClass feeds one measured execution back: flops of work finished in
// seconds by the given variant class. Non-finite or non-positive measurements
// are discarded, as are device-class observations while quarantined.
func (db *RateDB) ObserveClass(codelet string, cls Class, flops, seconds float64) {
	if flops <= 0 || seconds <= 0 || math.IsInf(flops, 1) || math.IsInf(seconds, 1) ||
		math.IsNaN(flops) || math.IsNaN(seconds) {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if cls.device() && db.quarantined {
		return
	}
	r := db.cell(cls, codelet)
	rate := flops / seconds
	if r.Count == 0 {
		r.Rate = rate
	} else {
		r.Rate += rateAlpha * (rate - r.Rate)
	}
	r.Count++
	if cls.device() && db.warming {
		db.trust = 1 - (1-db.trust)*db.decay
		if db.trust > 0.999 {
			db.warming = false
		}
	}
}

// Seed plants a model-derived rate into an empty (codelet, class) cell with
// the weight of a single observation, so the first placements of a run blend
// the perfmodel prediction instead of swinging on whatever the first jittered
// measurement happened to be. Cells that already hold a measurement — or a
// previous seed — are left alone, and a non-positive rate is ignored.
func (db *RateDB) Seed(codelet string, cls Class, rate float64) {
	if rate <= 0 || math.IsInf(rate, 1) || math.IsNaN(rate) {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.cell(cls, codelet)
	if r.Count > 0 {
		return
	}
	r.Rate = rate
	r.Count = 1
}

// Estimate predicts the duration of flops of work for the codelet on the
// given device; the two-device form forwards to EstimateClass.
func (db *RateDB) Estimate(codelet string, gpu bool, flops, modelSeconds float64) float64 {
	return db.EstimateClass(codelet, classOf(gpu), flops, modelSeconds)
}

// EstimateClass predicts the duration of flops of work for the codelet's
// given variant class, blending the static model estimate with the measured
// rate by trust w = n/(n+warm): a cold database answers the model exactly, a
// warm one the measurement. During a device re-warm the measured contribution
// of the GPU and hybrid classes is further scaled by the recovering trust.
func (db *RateDB) EstimateClass(codelet string, cls Class, flops, modelSeconds float64) float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.cells[cls][codelet]
	if !ok || r.Count == 0 || r.Rate <= 0 || flops <= 0 {
		return modelSeconds
	}
	w := r.Count / (r.Count + rateWarm)
	if cls.device() && db.warming {
		w *= db.trust
	}
	return (1-w)*modelSeconds + w*flops/r.Rate
}

// Quarantine freezes the device classes during an outage: estimates keep
// answering (the scheduler still ranks the CPU fallback against the model),
// but GPU and hybrid observations are discarded until Rewarm.
func (db *RateDB) Quarantine() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.quarantined = true
}

// Quarantined reports whether device-class observations are currently
// discarded.
func (db *RateDB) Quarantined() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.quarantined
}

// Rewarm lifts a quarantine after device recovery: device-class trust drops
// to zero so estimates restart from the model, and each subsequent
// observation halves the remaining distrust every halfLife observations.
// halfLife <= 0 restores full trust immediately.
func (db *RateDB) Rewarm(halfLife float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.quarantined = false
	if halfLife <= 0 {
		db.warming = false
		db.trust = 1
		return
	}
	db.warming = true
	db.trust = 0
	db.decay = math.Pow(0.5, 1/halfLife)
}

type rateDBJSON struct {
	CPU map[string]deviceRate `json:"cpu"`
	GPU map[string]deviceRate `json:"gpu"`
	Hyb map[string]deviceRate `json:"hyb"`
}

// MarshalJSON serializes the learned rates (resilience state is never
// persisted — a saved database is always the healthy view). Keys marshal in
// sorted order via encoding/json, so equal databases serialize identically.
func (db *RateDB) MarshalJSON() ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	j := rateDBJSON{
		CPU: map[string]deviceRate{},
		GPU: map[string]deviceRate{},
		Hyb: map[string]deviceRate{},
	}
	for _, p := range []struct {
		cls Class
		dst map[string]deviceRate
	}{{ClassCPU, j.CPU}, {ClassGPU, j.GPU}, {ClassHyb, j.Hyb}} {
		for k, v := range db.cells[p.cls] {
			p.dst[k] = *v
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a serialized database as a fresh healthy state.
// Databases saved before the hybrid class simply restore with no hybrid
// rates.
func (db *RateDB) UnmarshalJSON(b []byte) error {
	var j rateDBJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, p := range []struct {
		cls Class
		src map[string]deviceRate
	}{{ClassCPU, j.CPU}, {ClassGPU, j.GPU}, {ClassHyb, j.Hyb}} {
		db.cells[p.cls] = make(map[string]*deviceRate, len(p.src))
		for k, v := range p.src {
			c := v
			db.cells[p.cls][k] = &c
		}
	}
	db.quarantined = false
	db.warming = false
	db.trust = 0
	db.decay = 0
	return nil
}

// Codelets returns the sorted union of codelet names with any learned rate,
// for reports and tests.
func (db *RateDB) Codelets() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	seen := map[string]bool{}
	for _, m := range db.cells {
		for k := range m {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

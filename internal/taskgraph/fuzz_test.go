package taskgraph

import (
	"fmt"
	"testing"

	"tianhe/internal/element"
)

// FuzzGraphSchedule decodes arbitrary bytes into a task/dependency set and
// asserts the runtime's structural invariants: the scheduler never
// deadlocks (Run returns), every task is scheduled and its body executes
// exactly once, and no task starts before every dependency has finished —
// under both serial and parallel body execution.
func FuzzGraphSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{5, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 7, 7})
	f.Add([]byte{24, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 255, 254, 253})
	f.Add([]byte{16, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := int(next())%24 + 1

		g := New()
		handles := make([]*Handle, 6)
		for i := range handles {
			handles[i] = g.NewHandle(fmt.Sprintf("h%d", i), int64(i+1)*4096)
		}
		ran := make([]int, n)
		for i := 0; i < n; i++ {
			sel := next()
			costs := Costs{}
			cpuSec := float64(next()%50+1) / 1000
			gpuSec := float64(next()%50+1) / 1000
			switch sel % 3 {
			case 0:
				costs.CPUSeconds = func() float64 { return cpuSec }
			case 1:
				costs.GPUSeconds = func() float64 { return gpuSec }
			default:
				costs.CPUSeconds = func() float64 { return cpuSec }
				costs.GPUSeconds = func() float64 { return gpuSec }
			}
			nAcc := int(next()) % 4
			accs := make([]Access, 0, nAcc)
			for a := 0; a < nAcc; a++ {
				accs = append(accs, Access{
					H:    handles[int(next())%len(handles)],
					Mode: AccessMode(next() % 3),
				})
			}
			i := i
			task := g.Add(&Task{
				Name:     fmt.Sprintf("t%02d", i),
				Codelet:  fmt.Sprintf("c%d", sel%4),
				Flops:    float64(next()+1) * 1e6,
				Priority: int(next() % 4),
				Costs:    costs,
				Accesses: accs,
				Run:      func() { ran[i]++ },
			})
			// Explicit extra edges to earlier tasks, beyond access inference.
			for e := int(next()) % 3; e > 0 && i > 0; e-- {
				g.After(task, g.Tasks()[int(next())%i])
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("builder produced an invalid graph: %v", err)
		}

		for _, par := range []int{1, 4} {
			for i := range ran {
				ran[i] = 0
			}
			el := element.New(element.Config{Seed: 77, Virtual: true})
			sch := NewScheduler(el, Options{Par: par})
			rep, err := sch.Run(g, 0)
			if err != nil {
				t.Fatalf("par %d: Run: %v", par, err)
			}
			if len(rep.TaskSpans) != n {
				t.Fatalf("par %d: scheduled %d of %d tasks", par, len(rep.TaskSpans), n)
			}
			seen := map[string]bool{}
			finish := map[string]float64{}
			for _, ts := range rep.TaskSpans {
				if seen[ts.Name] {
					t.Fatalf("par %d: task %q scheduled twice", par, ts.Name)
				}
				seen[ts.Name] = true
				finish[ts.Name] = ts.End
			}
			for _, task := range g.Tasks() {
				ts, ok := rep.Span(task.Name)
				if !ok {
					t.Fatalf("par %d: task %q missing from the report", par, task.Name)
				}
				for _, d := range task.Deps() {
					dep := g.Tasks()[d]
					if ts.Start < finish[dep.Name] {
						t.Fatalf("par %d: %q started %v before dependency %q finished %v",
							par, task.Name, ts.Start, dep.Name, finish[dep.Name])
					}
				}
			}
			for i, c := range ran {
				if c != 1 {
					t.Fatalf("par %d: task t%02d body ran %d times, want exactly once", par, i, c)
				}
			}
		}
	})
}

package taskgraph

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"tianhe/internal/element"
	"tianhe/internal/fault"
)

func testElement(seed uint64) *element.Element {
	return element.New(element.Config{Seed: seed, Virtual: true})
}

// chainGraph builds n sequential tasks over one handle, each preferring the
// GPU (cpuSec > gpuSec) unless flipped.
func chainGraph(n int, cpuSec, gpuSec float64) *Graph {
	g := New()
	h := g.NewHandle("h", 1<<20)
	for i := 0; i < n; i++ {
		g.Add(&Task{
			Name:     fmt.Sprintf("t%02d", i),
			Codelet:  "step",
			Flops:    1e9,
			Costs:    bothCosts(cpuSec, gpuSec),
			Accesses: []Access{{h, ReadWrite}},
		})
	}
	return g
}

func TestSchedulerDeterministic(t *testing.T) {
	run := func() Report {
		el := testElement(11)
		sch := NewScheduler(el, Options{})
		g := New()
		a := g.NewHandle("a", 4096)
		b := g.NewHandle("b", 4096)
		c := g.NewHandle("c", 4096)
		g.Add(&Task{Name: "wa", Codelet: "gen", Flops: 1e8, Costs: bothCosts(0.02, 0.01), Accesses: []Access{{a, Write}}})
		g.Add(&Task{Name: "wb", Codelet: "gen", Flops: 1e8, Costs: bothCosts(0.02, 0.01), Accesses: []Access{{b, Write}}})
		g.Add(&Task{Name: "mul", Codelet: "mul", Flops: 1e9, Costs: bothCosts(0.4, 0.05),
			Accesses: []Access{{a, Read}, {b, Read}, {c, Write}}})
		g.Add(&Task{Name: "post", Codelet: "post", Flops: 1e7, Costs: cpuCost(0.01), Accesses: []Access{{c, ReadWrite}}})
		rep, err := sch.Run(g, 0)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", r1, r2)
	}
	if r1.Tasks != 4 || len(r1.TaskSpans) != 4 {
		t.Errorf("tasks = %d spans = %d, want 4/4", r1.Tasks, len(r1.TaskSpans))
	}
}

func TestSchedulerPlacement(t *testing.T) {
	el := testElement(3)
	sch := NewScheduler(el, Options{})
	g := New()
	h := g.NewHandle("h", 1024)
	o := g.NewHandle("o", 1024)
	// Strongly GPU-favored task, then a CPU-only consumer.
	g.Add(&Task{Name: "big", Codelet: "big", Flops: 1e10, Costs: bothCosts(5, 0.05), Accesses: []Access{{h, Write}}})
	g.Add(&Task{Name: "host", Codelet: "host", Flops: 1e6, Costs: cpuCost(0.001),
		Accesses: []Access{{h, Read}, {o, Write}}})
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TasksGPU != 1 || rep.TasksCPU != 1 {
		t.Fatalf("placement split GPU=%d CPU=%d, want 1/1", rep.TasksGPU, rep.TasksCPU)
	}
	big, _ := rep.Span("big")
	if big.Device != "gpu" {
		t.Errorf("big placed on %s, want gpu", big.Device)
	}
	host, _ := rep.Span("host")
	if !strings.HasPrefix(host.Device, "cpu") {
		t.Errorf("host placed on %s, want a cpu core", host.Device)
	}
	// The CPU consumer of the GPU-written handle forced a download.
	if rep.BytesOut == 0 {
		t.Error("no download booked for the host reader of a device-dirty handle")
	}
	if host.Start < big.End {
		t.Errorf("host started at %v before its dependency finished at %v", host.Start, big.End)
	}
}

func TestSchedulerResidencySkipsRepeatUploads(t *testing.T) {
	el := testElement(5)
	sch := NewScheduler(el, Options{})
	g := New()
	shared := g.NewHandle("shared", 1<<20)
	outs := make([]*Handle, 3)
	g.Add(&Task{Name: "init", Codelet: "init", Flops: 1e9, Costs: bothCosts(2, 0.02), Accesses: []Access{{shared, Write}}})
	for i := range outs {
		outs[i] = g.NewHandle(fmt.Sprintf("out%d", i), 1024)
		g.Add(&Task{Name: fmt.Sprintf("use%d", i), Codelet: "use", Flops: 1e9,
			Costs: bothCosts(2, 0.02), Accesses: []Access{{shared, Read}, {outs[i], Write}}})
	}
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TasksGPU != 4 {
		t.Fatalf("TasksGPU = %d, want 4 (all tasks GPU-favored)", rep.TasksGPU)
	}
	// "shared" is written on-device, so every read hits residency.
	if want := int64(3 << 20); rep.BytesSkipped != want {
		t.Errorf("BytesSkipped = %d, want %d (three resident reads)", rep.BytesSkipped, want)
	}
}

func TestSchedulerTopologicalSafety(t *testing.T) {
	el := testElement(9)
	sch := NewScheduler(el, Options{})
	g := chainGraph(12, 0.02, 0.01)
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	finish := map[string]float64{}
	for _, ts := range rep.TaskSpans {
		finish[ts.Name] = ts.End
	}
	for _, task := range g.Tasks() {
		ts, ok := rep.Span(task.Name)
		if !ok {
			t.Fatalf("task %q never scheduled", task.Name)
		}
		for _, d := range task.Deps() {
			if dep := g.Tasks()[d]; ts.Start < finish[dep.Name] {
				t.Errorf("%q started at %v before dependency %q finished at %v",
					task.Name, ts.Start, dep.Name, finish[dep.Name])
			}
		}
	}
}

func TestSchedulerStallsWithoutFallback(t *testing.T) {
	el := testElement(21)
	in, err := fault.NewScenario("lost-gpu", 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(in, el)
	sch := NewScheduler(el, Options{})
	g := chainGraph(20, 3, 1) // ~20s of GPU work crosses the loss at 7s
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Stalled {
		t.Fatal("fault-unaware scheduler did not stall on the dead context")
	}
	if len(rep.TaskSpans) == len(g.Tasks()) {
		t.Error("stalled run claims to have scheduled every task")
	}
}

func TestSchedulerFallbackAndRecovery(t *testing.T) {
	el := testElement(21)
	in, err := fault.NewScenario("lost-gpu", 20, 21) // loss window [7, 12)
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(in, el)
	sch := NewScheduler(el, Options{GPUFallback: true, RewarmHalfLife: 4})
	g := chainGraph(20, 3, 1)
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Stalled {
		t.Fatal("fault-aware scheduler stalled")
	}
	if len(rep.TaskSpans) != 20 {
		t.Fatalf("scheduled %d tasks, want 20", len(rep.TaskSpans))
	}
	if rep.TasksCPU == 0 {
		t.Error("no task fell back to the CPU during the outage")
	}
	if rep.TasksGPU == 0 {
		t.Error("no task ran on the GPU at all")
	}
	// Tasks placed after the restore should be back on the GPU.
	last := rep.TaskSpans[len(rep.TaskSpans)-1]
	if last.Device != "gpu" {
		t.Errorf("final task placed on %s, want gpu after recovery", last.Device)
	}
	// The outage quarantined and then re-warmed the affinity database.
	if sch.Rates().Quarantined() {
		t.Error("affinity database still quarantined after recovery")
	}
}

func TestSchedulerABFTCountsStrikes(t *testing.T) {
	el := testElement(33)
	in, err := fault.NewScenario("sdc-single", 10, 33)
	if err != nil {
		t.Fatal(err)
	}
	sch := NewScheduler(el, Options{Verify: true, SDC: in})
	g := New()
	h := g.NewHandle("h", 1<<20)
	for i := 0; i < 40; i++ {
		g.Add(&Task{
			Name: fmt.Sprintf("k%02d", i), Codelet: "gemm", Flops: 1e9,
			Shape:    [3]int{512, 512, 512},
			Costs:    Costs{GPUSeconds: func() float64 { return 0.2 }},
			Accesses: []Access{{h, ReadWrite}},
		})
	}
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SDCDetected == 0 {
		t.Fatal("no strike detected under sdc-single across 40 verified tasks")
	}
	if rep.SDCDetected != rep.SDCCorrected+rep.SDCEscalated {
		t.Errorf("detected %d != corrected %d + escalated %d",
			rep.SDCDetected, rep.SDCCorrected, rep.SDCEscalated)
	}
	if rep.SDCCorrected != rep.RecomputedTasks {
		t.Errorf("corrected %d != recomputed %d (single-fault strikes recompute)",
			rep.SDCCorrected, rep.RecomputedTasks)
	}
	if rep.VerifySeconds <= 0 {
		t.Error("verification booked no time")
	}
	// Same seed, fresh scheduler: identical outcome (strikes keyed by task
	// sequence, not by time-of-day or map order).
	el2 := testElement(33)
	in2, _ := fault.NewScenario("sdc-single", 10, 33)
	sch2 := NewScheduler(el2, Options{Verify: true, SDC: in2})
	g2 := New()
	h2 := g2.NewHandle("h", 1<<20)
	for i := 0; i < 40; i++ {
		g2.Add(&Task{
			Name: fmt.Sprintf("k%02d", i), Codelet: "gemm", Flops: 1e9,
			Shape:    [3]int{512, 512, 512},
			Costs:    Costs{GPUSeconds: func() float64 { return 0.2 }},
			Accesses: []Access{{h2, ReadWrite}},
		})
	}
	rep2, err := sch2.Run(g2, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SDCDetected != rep2.SDCDetected || rep.SDCEscalated != rep2.SDCEscalated {
		t.Errorf("strike outcomes not reproducible: %d/%d vs %d/%d",
			rep.SDCDetected, rep.SDCEscalated, rep2.SDCDetected, rep2.SDCEscalated)
	}
}

func TestSchedulerBodiesRunExactlyOnceAnyPar(t *testing.T) {
	for _, par := range []int{1, 8} {
		el := testElement(2)
		sch := NewScheduler(el, Options{Par: par})
		g := New()
		// A diamond: two independent middle tasks write disjoint slots.
		data := make([]int, 4)
		h0 := g.NewHandle("h0", 64)
		ha := g.NewHandle("ha", 64)
		hb := g.NewHandle("hb", 64)
		ho := g.NewHandle("ho", 64)
		g.Add(&Task{Name: "src", Costs: cpuCost(0.01), Run: func() { data[0] = 1 },
			Accesses: []Access{{h0, Write}}})
		g.Add(&Task{Name: "ma", Costs: cpuCost(0.01), Run: func() { data[1] = data[0] + 1 },
			Accesses: []Access{{h0, Read}, {ha, Write}}})
		g.Add(&Task{Name: "mb", Costs: cpuCost(0.01), Run: func() { data[2] = data[0] + 2 },
			Accesses: []Access{{h0, Read}, {hb, Write}}})
		g.Add(&Task{Name: "join", Costs: cpuCost(0.01), Run: func() { data[3] = data[1] * data[2] },
			Accesses: []Access{{ha, Read}, {hb, Read}, {ho, Write}}})
		if _, err := sch.Run(g, 0); err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		want := []int{1, 2, 3, 6}
		if !reflect.DeepEqual(data, want) {
			t.Errorf("par %d: data = %v, want %v", par, data, want)
		}
	}
}

func TestSchedulerFinalDrainFlushesDirtyHandles(t *testing.T) {
	el := testElement(4)
	sch := NewScheduler(el, Options{})
	g := New()
	h := g.NewHandle("h", 1<<20)
	g.Add(&Task{Name: "only", Codelet: "only", Flops: 1e9, Costs: bothCosts(3, 0.02),
		Accesses: []Access{{h, Write}}})
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TasksGPU != 1 {
		t.Fatalf("task not placed on GPU")
	}
	if rep.BytesOut != 1<<20 {
		t.Errorf("BytesOut = %d, want the dirty handle drained (%d)", rep.BytesOut, 1<<20)
	}
	only, _ := rep.Span("only")
	if rep.End <= only.End {
		t.Errorf("End = %v not extended past the kernel end %v by the drain", rep.End, only.End)
	}
}

package taskgraph

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"tianhe/internal/abft"
	"tianhe/internal/element"
	"tianhe/internal/fault"
)

// hybTask builds a GEMM-like task whose hybrid body splits rows at the given
// fraction. The whole-device bodies cost cpuSec/gpuSec; both halves scale
// linearly with their row share (the CPU model is per-core, so an equal
// three-core split finishes in a third of the slab time).
func hybTask(name string, h *Handle, rows int, split, cpuSec, gpuSec float64) *Task {
	return &Task{
		Name: name, Codelet: "hgemm", Flops: 1e9,
		Costs: bothCosts(cpuSec, gpuSec),
		Hybrid: &Hybrid{
			Rows:       rows,
			Split:      func() float64 { return split },
			GPUSeconds: func(r int) float64 { return gpuSec * float64(r) / float64(rows) },
			CPUSeconds: func(r int) float64 { return cpuSec * float64(r) / float64(rows) },
		},
		Accesses: []Access{{h, ReadWrite}},
	}
}

func TestHybridVariantWinsAndSplits(t *testing.T) {
	// A dependent chain — the case task-level parallelism cannot help, and
	// exactly where the monolithic loop's intra-update split beats a
	// whole-device graph: each hybrid task splits half its rows onto the
	// device and half across the three cores, so its join beats both
	// whole-device bodies.
	run := func(hybrid bool) Report {
		el := testElement(7)
		sch := NewScheduler(el, Options{})
		g := New()
		h := g.NewHandle("t", 1<<20)
		for i := 0; i < 6; i++ {
			tk := hybTask(fmt.Sprintf("upd%d", i), h, 300, 0.5, 3.0, 1.0)
			if !hybrid {
				tk.Hybrid = nil
			}
			g.Add(tk)
		}
		rep, err := sch.Run(g, 0)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	hyb, pure := run(true), run(false)
	if hyb.TasksHyb != 6 {
		t.Fatalf("TasksHyb = %d, want 6 (every task hybrid-favored)", hyb.TasksHyb)
	}
	for _, ts := range hyb.TaskSpans {
		if !strings.HasPrefix(ts.Device, "hyb(g150") {
			t.Errorf("task %s placed on %q, want hyb(g150) (half of 300 rows)", ts.Name, ts.Device)
		}
	}
	if hyb.Seconds() >= pure.Seconds() {
		t.Errorf("hybrid makespan %.3fs not better than whole-device %.3fs",
			hyb.Seconds(), pure.Seconds())
	}
	// The join downloaded the device's row share of every written tile.
	if hyb.BytesOut == 0 {
		t.Error("hybrid joins booked no write-back")
	}
}

func TestHybridDegenerateSplitFallsBackToWholeDevice(t *testing.T) {
	el := testElement(9)
	sch := NewScheduler(el, Options{})
	g := New()
	a := g.NewHandle("a", 1<<20)
	b := g.NewHandle("b", 1<<20)
	// Splits that round to 0 or all rows leave only the whole-device bodies.
	g.Add(hybTask("allgpu", a, 300, 0.9999, 3.0, 1.0))
	g.Add(hybTask("allcpu", b, 300, 0.0001, 1.0, 3.0))
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TasksHyb != 0 {
		t.Fatalf("TasksHyb = %d, want 0 for degenerate splits", rep.TasksHyb)
	}
	ag, _ := rep.Span("allgpu")
	ac, _ := rep.Span("allcpu")
	if ag.Device != "gpu" {
		t.Errorf("allgpu placed on %q, want gpu", ag.Device)
	}
	if !strings.HasPrefix(ac.Device, "cpu") {
		t.Errorf("allcpu placed on %q, want a cpu core", ac.Device)
	}
}

func TestHybridObserveFeedsSplitOracle(t *testing.T) {
	el := testElement(13)
	sch := NewScheduler(el, Options{})
	g := New()
	h := g.NewHandle("h", 1<<20)
	var gotSplit, gotTG, gotTC float64
	calls := 0
	tk := hybTask("upd", h, 200, 0.5, 3.0, 1.0)
	var gotWorks, gotTimes []float64
	tk.Hybrid.Observe = func(gsplit, tg, tc float64, coreWorks, coreTimes []float64) {
		calls++
		gotSplit, gotTG, gotTC = gsplit, tg, tc
		gotWorks, gotTimes = coreWorks, coreTimes
	}
	g.Add(tk)
	if _, err := sch.Run(g, 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 1 {
		t.Fatalf("Observe called %d times, want 1", calls)
	}
	if gotSplit != 0.5 {
		t.Errorf("observed gsplit = %v, want 0.5", gotSplit)
	}
	if gotTG <= 0 || gotTC <= 0 {
		t.Errorf("observed durations tg=%v tc=%v, want both positive", gotTG, gotTC)
	}
	if len(gotWorks) == 0 || len(gotWorks) != len(gotTimes) {
		t.Fatalf("level-2 feedback vectors: works=%v times=%v, want matching non-empty", gotWorks, gotTimes)
	}
	for i := range gotWorks {
		if (gotWorks[i] > 0) != (gotTimes[i] > 0) {
			t.Errorf("core %d feedback mismatch: work=%v time=%v", i, gotWorks[i], gotTimes[i])
		}
	}
	// The hybrid class learned a rate, ready for checkpoint round-trips.
	blob, err := json.Marshal(sch.Rates())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"hyb":{"hgemm"`) {
		t.Errorf("serialized affinity database misses the hybrid class: %s", blob)
	}
	var back RateDB
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.EstimateClass("hgemm", ClassHyb, 1e9, 9),
		sch.Rates().EstimateClass("hgemm", ClassHyb, 1e9, 9); got != want {
		t.Errorf("hybrid estimate after round-trip = %v, want %v", got, want)
	}
}

func TestHybridLostGPUDegradesToCPUAndRecovers(t *testing.T) {
	el := testElement(21)
	in, err := fault.NewScenario("lost-gpu", 20, 21) // loss window [7, 12)
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(in, el)
	sch := NewScheduler(el, Options{GPUFallback: true, RewarmHalfLife: 4})
	g := New()
	h := g.NewHandle("h", 1<<20)
	for i := 0; i < 24; i++ {
		g.Add(hybTask(fmt.Sprintf("t%02d", i), h, 300, 0.5, 3.0, 1.0))
	}
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Stalled {
		t.Fatal("hybrid chain stalled on the dead context")
	}
	if len(rep.TaskSpans) != 24 {
		t.Fatalf("scheduled %d tasks, want 24", len(rep.TaskSpans))
	}
	if rep.TasksCPU == 0 {
		t.Error("no hybrid task degraded to its CPU body during the outage")
	}
	if rep.TasksHyb == 0 {
		t.Error("no task ran its hybrid body at all")
	}
	for _, ts := range rep.TaskSpans {
		if ts.Device == "gpu" && ts.Start >= 7 && ts.Start < 12 {
			t.Errorf("task %s booked on the dead device at %v", ts.Name, ts.Start)
		}
	}
	last := rep.TaskSpans[len(rep.TaskSpans)-1]
	if !strings.HasPrefix(last.Device, "hyb(") {
		t.Errorf("final task placed on %q, want the hybrid body back after recovery", last.Device)
	}
	if sch.Rates().Quarantined() {
		t.Error("affinity database still quarantined after recovery")
	}
}

func TestHybridVerifyCoversBothHalves(t *testing.T) {
	el := testElement(17)
	sch := NewScheduler(el, Options{Verify: true})
	g := New()
	h := g.NewHandle("h", 1<<20)
	tk := hybTask("upd", h, 512, 0.5, 3.0, 1.0)
	tk.Shape = [3]int{512, 384, 256}
	g.Add(tk)
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TasksHyb != 1 {
		t.Fatalf("TasksHyb = %d, want 1", rep.TasksHyb)
	}
	want := abft.VerifySeconds(256, 384, 256) + abft.VerifySeconds(256, 384, 256)
	if rep.VerifySeconds != want {
		t.Errorf("VerifySeconds = %v, want %v (both 256-row halves checked)", rep.VerifySeconds, want)
	}
	if sch.TaskSeq() != 1 {
		t.Errorf("TaskSeq = %d, want 1 (a split task consumes one strike slot)", sch.TaskSeq())
	}
}

func TestHybridSDCStrikesResolveDeterministically(t *testing.T) {
	run := func() Report {
		el := testElement(33)
		in, err := fault.NewScenario("sdc-single", 10, 33)
		if err != nil {
			t.Fatal(err)
		}
		sch := NewScheduler(el, Options{Verify: true, SDC: in})
		g := New()
		h := g.NewHandle("h", 1<<20)
		for i := 0; i < 40; i++ {
			tk := hybTask(fmt.Sprintf("k%02d", i), h, 512, 0.5, 3.0, 1.0)
			tk.Shape = [3]int{512, 512, 512}
			g.Add(tk)
		}
		rep, err := sch.Run(g, 0)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	rep := run()
	if rep.SDCDetected == 0 {
		t.Fatal("no strike detected across 40 verified hybrid tasks")
	}
	if rep.SDCDetected != rep.SDCCorrected+rep.SDCEscalated {
		t.Errorf("detected %d != corrected %d + escalated %d",
			rep.SDCDetected, rep.SDCCorrected, rep.SDCEscalated)
	}
	if rep.SDCCorrected != rep.RecomputedTasks {
		t.Errorf("corrected %d != recomputed %d", rep.SDCCorrected, rep.RecomputedTasks)
	}
	rep2 := run()
	if rep.SDCDetected != rep2.SDCDetected || rep.SDCEscalated != rep2.SDCEscalated {
		t.Errorf("strike outcomes not reproducible: %d/%d vs %d/%d",
			rep.SDCDetected, rep.SDCEscalated, rep2.SDCDetected, rep2.SDCEscalated)
	}
}

// TestHybridResidencyAccounting pins the dual-device byte accounting: a tile
// touched from both devices is charged to the working-set guard exactly once
// and exactly as long as it occupies device memory, a device-dirty tile is
// written back whole before the host half starts, and the join streams back
// only the device's row share.
func TestHybridResidencyAccounting(t *testing.T) {
	const tile = int64(1 << 20)
	el := testElement(19)
	sch := NewScheduler(el, Options{})
	g := New()
	h := g.NewHandle("tile", tile)
	out := g.NewHandle("out", 64)
	// 1: whole-GPU write leaves the tile device-dirty.
	g.Add(&Task{Name: "init", Codelet: "init", Flops: 1e9,
		Costs: Costs{GPUSeconds: func() float64 { return 0.1 }}, Accesses: []Access{{h, Write}}})
	// 2: hybrid update of the same tile: the host half needs the device's
	// newer values (whole write-back), the device half reads its rows in
	// place (no upload), and the join downloads exactly the device share.
	g.Add(hybTask("upd", h, 256, 0.5, 3.0, 1.0))
	// 3: a whole-GPU reader re-uploads the tile: the host became
	// authoritative at the hybrid join, so the stale device copy must be gone.
	g.Add(&Task{Name: "read", Codelet: "read", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.1 }},
		Accesses: []Access{{h, Read}, {out, Write}}})
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	upd, _ := rep.Span("upd")
	if !strings.HasPrefix(upd.Device, "hyb(g128") {
		t.Fatalf("upd placed on %q, want hyb(g128)", upd.Device)
	}
	// In: only the final reader's re-upload.
	if rep.BytesIn != tile {
		t.Errorf("BytesIn = %d, want %d (one whole re-upload after the join)", rep.BytesIn, tile)
	}
	// Out: the dirty write-back (whole) + the join's device share (half) +
	// the final drain of the 64-byte output.
	if want := tile + tile/2 + 64; rep.BytesOut != want {
		t.Errorf("BytesOut = %d, want %d", rep.BytesOut, want)
	}
	// Skipped: the hybrid device half read its row share from residency.
	if want := tile / 2; rep.BytesSkipped != want {
		t.Errorf("BytesSkipped = %d, want %d", rep.BytesSkipped, want)
	}
}

// TestHybridWorkingSetNoDoubleCountNoLeak drives the guard itself: a hybrid
// update of a tile already resident must not charge a second copy, and the
// transient row shares of many hybrid tasks must be released at each join —
// either bug overflows a device memory sized to just fit and panics.
func TestHybridWorkingSetNoDoubleCountNoLeak(t *testing.T) {
	const tile = int64(1 << 20)
	el := element.New(element.Config{Seed: 23, Virtual: true, GPUMem: tile + 8192})
	sch := NewScheduler(el, Options{})
	g := New()
	h := g.NewHandle("tile", tile)
	out := g.NewHandle("out", 64)
	// Make the tile resident and clean via a whole-GPU read.
	g.Add(&Task{Name: "warm", Codelet: "warm", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.1 }},
		Accesses: []Access{{h, Read}, {out, Write}}})
	// Repeated hybrid updates: each holds the resident copy (once) during
	// its booking and releases its transient share at the join. Leaked
	// shares of tile/2 bytes would overflow after two tasks.
	for i := 0; i < 8; i++ {
		g.Add(hybTask(fmt.Sprintf("upd%d", i), h, 256, 0.5, 3.0, 1.0))
	}
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TasksHyb != 8 {
		t.Errorf("TasksHyb = %d, want 8", rep.TasksHyb)
	}
}

// TestHybridTransientEvictsColdResidents: when the held device share of a
// hybrid task (small enough to stay under the stream window) does not fit
// next to cached tiles, the LRU resident is evicted — and a later reader pays
// the re-upload.
func TestHybridTransientEvictsColdResidents(t *testing.T) {
	const cached = int64(900 << 10) // resident read crowding the device
	const big = int64(400 << 10)    // hybrid tile: 200 KiB held device share
	el := element.New(element.Config{Seed: 29, Virtual: true, GPUMem: 1 << 20})
	sch := NewScheduler(el, Options{})
	g := New()
	a := g.NewHandle("a", cached)
	b := g.NewHandle("b", big)
	o1 := g.NewHandle("o1", 64)
	o2 := g.NewHandle("o2", 64)
	g.Add(&Task{Name: "r1", Codelet: "r", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.1 }},
		Accesses: []Access{{a, Read}, {o1, Write}}})
	g.Add(hybTask("upd", b, 256, 0.5, 3.0, 1.0))
	g.Add(&Task{Name: "r2", Codelet: "r", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.1 }},
		Accesses: []Access{{a, Read}, {o2, Write}}})
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	upd, _ := rep.Span("upd")
	if !strings.HasPrefix(upd.Device, "hyb(") {
		t.Fatalf("upd placed on %q, want hybrid", upd.Device)
	}
	// "a" uploaded twice: once for r1, once for r2 after the hybrid task's
	// device share evicted it. The hybrid share itself uploads big/2.
	if want := 2*cached + big/2; rep.BytesIn != want {
		t.Errorf("BytesIn = %d, want %d (eviction forced a re-upload)", rep.BytesIn, want)
	}
}

// TestOversizedWrittenSetsStream pins the streaming semantics: a task whose
// written working set cannot fit on the device streams it through the bounded
// double-buffered window — whole-GPU and hybrid placements alike — instead of
// panicking the working-set guard. Only the window is charged while the task
// runs, the host copy stays authoritative afterwards (nothing dirty to
// drain), and the task ends no earlier than its stream.
func TestOversizedWrittenSetsStream(t *testing.T) {
	const mem = int64(1 << 20)
	const huge = int64(16 << 20) // 16x the device memory

	// Whole-GPU placement of an update 16x over device memory.
	el := element.New(element.Config{Seed: 31, Virtual: true, GPUMem: mem})
	sch := NewScheduler(el, Options{})
	g := New()
	c := g.NewHandle("c", huge)
	g.Add(&Task{Name: "upd", Codelet: "k", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.001 }},
		Accesses: []Access{{c, ReadWrite}}})
	rep, err := sch.Run(g, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sp, _ := rep.Span("upd")
	if sp.Device != "gpu" {
		t.Fatalf("upd placed on %q, want gpu", sp.Device)
	}
	if rep.BytesIn != huge {
		t.Errorf("BytesIn = %d, want %d (whole tile streamed up)", rep.BytesIn, huge)
	}
	if rep.BytesOut != huge {
		t.Errorf("BytesOut = %d, want %d (streamed back under the kernel, not drained after)",
			rep.BytesOut, huge)
	}
	// A 1 ms kernel cannot hide a 32 MiB round trip: the task runs
	// bandwidth-bound and ends only once the last window drains.
	head := mem / 4 / 2
	if minEnd := el.GPU.TransferModel().Seconds(huge - head + huge); float64(sp.End) < minEnd {
		t.Errorf("streamed task ended at %v, before its stream could finish (%v)", sp.End, minEnd)
	}

	// Hybrid placement: the device share is still 8x over memory, and the
	// stream window must fit beside cached reads without evicting them.
	el2 := element.New(element.Config{Seed: 33, Virtual: true, GPUMem: mem})
	sch2 := NewScheduler(el2, Options{})
	g2 := New()
	a := g2.NewHandle("a", mem/2)
	o := g2.NewHandle("o", 64)
	b := g2.NewHandle("b", huge)
	g2.Add(&Task{Name: "r1", Codelet: "r", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.1 }},
		Accesses: []Access{{a, Read}, {o, Write}}})
	g2.Add(hybTask("hupd", b, 256, 0.5, 3.0, 1.0))
	g2.Add(&Task{Name: "r2", Codelet: "r", Flops: 1e9,
		Costs:    Costs{GPUSeconds: func() float64 { return 0.1 }},
		Accesses: []Access{{a, Read}, {o, Write}}})
	rep2, err := sch2.Run(g2, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hsp, _ := rep2.Span("hupd")
	if !strings.HasPrefix(hsp.Device, "hyb(") {
		t.Fatalf("hupd placed on %q, want hybrid", hsp.Device)
	}
	// "a" uploaded once: the stream window fits beside it, so r2 reads it
	// straight from residency instead of paying a re-upload.
	if want := mem/2 + huge/2; rep2.BytesIn != want {
		t.Errorf("BytesIn = %d, want %d (cached read must survive the stream)", rep2.BytesIn, want)
	}
	// Out: the streamed row share plus the final drain of the 64-byte "o".
	if want := huge/2 + 64; rep2.BytesOut != want {
		t.Errorf("BytesOut = %d, want %d (the device's streamed row share)", rep2.BytesOut, want)
	}
}

// TestRateSeedsPreventColdMisplacements is the cold-start regression: an
// unrepresentative first sample (a tiny launch-bound kernel) poisons the cold
// EWMA so every following task of the codelet misplaces onto the CPU, while a
// database seeded with the perfmodel rate — or warmed by earlier graphs —
// keeps them on the device.
func TestRateSeedsPreventColdMisplacements(t *testing.T) {
	probe := func() *Graph {
		g := New()
		// One launch-bound runt (rate 1e8 flops/s), then five big tasks
		// whose honest device rate is 1e10.
		h := g.NewHandle("h", 1<<20)
		g.Add(&Task{Name: "runt", Codelet: "k", Flops: 1e7,
			Costs: bothCosts(0.11, 0.1), Accesses: []Access{{h, ReadWrite}}})
		for i := 0; i < 5; i++ {
			g.Add(&Task{Name: fmt.Sprintf("big%d", i), Codelet: "k", Flops: 1e9,
				Costs: bothCosts(0.12, 0.1), Accesses: []Access{{h, ReadWrite}}})
		}
		return g
	}
	devices := func(sch *Scheduler) []string {
		rep, err := sch.Run(probe(), 0)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var out []string
		for _, ts := range rep.TaskSpans {
			out = append(out, ts.Device)
		}
		return out
	}

	// Warmed: a previous graph of big tasks taught the database the honest
	// device rate.
	elW := testElement(41)
	schW := NewScheduler(elW, Options{})
	warmup := New()
	hw := warmup.NewHandle("hw", 1<<20)
	for i := 0; i < 6; i++ {
		warmup.Add(&Task{Name: fmt.Sprintf("w%d", i), Codelet: "k", Flops: 1e9,
			Costs: bothCosts(0.12, 0.1), Accesses: []Access{{hw, ReadWrite}}})
	}
	if _, err := schW.Run(warmup, 0); err != nil {
		t.Fatal(err)
	}
	warm := devices(schW)

	// Cold, seeded from the model rate: first placements match the warm run.
	seeded := devices(NewScheduler(testElement(41), Options{
		RateSeeds: []RateSeed{{Codelet: "k", Class: ClassGPU, Rate: 1e10}},
	}))

	// Cold, unseeded: the runt's sample misplaces every big task.
	unseeded := devices(NewScheduler(testElement(41), Options{}))

	for i := 1; i < len(warm); i++ {
		if warm[i] != "gpu" {
			t.Fatalf("warm run placed big task %d on %q, want gpu", i, warm[i])
		}
		if seeded[i] != warm[i] {
			t.Errorf("seeded cold run placed big task %d on %q, warm run on %q", i, seeded[i], warm[i])
		}
		if unseeded[i] == "gpu" {
			t.Errorf("unseeded cold run placed big task %d on gpu — expected the poisoned EWMA to misplace it (regression bait gone?)", i)
		}
	}

	// Seeding never overrides a measurement or an earlier seed.
	db := NewRateDB()
	db.ObserveClass("k", ClassGPU, 1e9, 1)
	db.Seed("k", ClassGPU, 5e9)
	if got := db.EstimateClass("k", ClassGPU, 1e9, 9); got == 9 {
		t.Error("measured cell lost after Seed")
	}
	db2 := NewRateDB()
	db2.Seed("k", ClassHyb, 2e9)
	db2.Seed("k", ClassHyb, 4e9)
	want := 0.75*9 + 0.25*(1e9/2e9)
	if got := db2.EstimateClass("k", ClassHyb, 1e9, 9); got != want {
		t.Errorf("seeded estimate = %v, want %v (first seed wins)", got, want)
	}
}

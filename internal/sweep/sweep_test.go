package sweep

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"tianhe/internal/telemetry"
)

func TestMapOrderIndependentOfPar(t *testing.T) {
	pts := make([]int, 97)
	for i := range pts {
		pts[i] = i
	}
	want := Map(context.Background(), 1, pts, func(i, p int) int { return p * p })
	for _, par := range []int{2, 3, 8, 64, 200} {
		got := Map(context.Background(), par, pts, func(i, p int) int { return p * p })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par=%d: result[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

func TestMapRunsEveryPointOnce(t *testing.T) {
	var counts [64]atomic.Int64
	Map(context.Background(), 8, make([]struct{}, len(counts)), func(i int, _ struct{}) int {
		counts[i].Add(1)
		return 0
	})
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("point %d ran %d times", i, n)
		}
	}
}

func TestSeedIsPureAndSpread(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		s := Seed(2009, i)
		if s != Seed(2009, i) {
			t.Fatalf("Seed(2009, %d) not pure", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("Seed collision between points %d and %d", j, i)
		}
		seen[s] = i
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("Seed must depend on the base")
	}
}

// instrumentedPoint records a counter, a set-style gauge, a histogram sample
// and a span on a per-point track — the shape real sweep points produce.
func instrumentedPoint(i int, tel *telemetry.Telemetry) {
	tel.Counter("sweep.pts").Inc()
	tel.Counter(fmt.Sprintf("pt%02d.done", i)).Inc()
	tel.Gauge("sweep.last_index").Set(float64(i))
	tel.Gauge("sweep.total").Add(float64(i))
	tel.Histogram("sweep.x", []float64{8, 16, 32, 64}).Observe(float64(i))
	tel.Trace.Span(fmt.Sprintf("track%02d", i), "test", "run", float64(i), float64(i)+0.5)
	tel.Trace.Sample("sweep.series", float64(i), float64(i*i))
}

func telBytes(tel *telemetry.Telemetry) (metrics, trace string) {
	var m, tr bytes.Buffer
	tel.Metrics.WriteText(&m)
	if err := tel.Trace.WriteJSON(&tr); err != nil {
		panic(err)
	}
	return m.String(), tr.String()
}

func TestMapTelByteIdenticalToSerial(t *testing.T) {
	const n = 23
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	run := func(par int) (string, string) {
		tel := telemetry.New()
		MapTel(context.Background(), par, tel, pts, func(i, p int, tel *telemetry.Telemetry) int {
			instrumentedPoint(i, tel)
			return i
		})
		return telBytes(tel)
	}
	wantM, wantT := run(1)
	for _, par := range []int{2, 8} {
		gotM, gotT := run(par)
		if gotM != wantM {
			t.Fatalf("par=%d metrics differ from serial:\n--- serial ---\n%s--- par ---\n%s", par, wantM, gotM)
		}
		if gotT != wantT {
			t.Fatalf("par=%d trace differs from serial", par)
		}
	}
}

func TestMapTelSerialUsesParentBundleDirectly(t *testing.T) {
	tel := telemetry.New()
	MapTel(context.Background(), 1, tel, []int{0, 1}, func(i, p int, child *telemetry.Telemetry) int {
		if child != tel {
			t.Fatalf("point %d: serial path must pass the parent bundle through", i)
		}
		return 0
	})
	MapTel(context.Background(), 4, tel, []int{0, 1}, func(i, p int, child *telemetry.Telemetry) int {
		if child == tel {
			t.Fatalf("point %d: parallel path must isolate the bundle", i)
		}
		if !child.Enabled() {
			t.Fatalf("point %d: child must be enabled when the parent is", i)
		}
		return 0
	})
	MapTel(context.Background(), 4, telemetry.Disabled(), []int{0, 1}, func(i, p int, child *telemetry.Telemetry) int {
		if child.Enabled() {
			t.Fatalf("point %d: child must stay disabled when the parent is", i)
		}
		return 0
	})
}

func TestMapPanicReportsLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		if !strings.Contains(fmt.Sprint(r), "point 3 panicked") {
			t.Fatalf("expected the lowest-index panic, got: %v", r)
		}
	}()
	Map(context.Background(), 4, make([]struct{}, 32), func(i int, _ struct{}) int {
		if i >= 3 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return 0
	})
}

func TestMapCanceledContextSkipsPoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	Map(ctx, 1, []int{1, 2, 3}, func(i, p int) int { ran++; return p })
	if ran != 0 {
		t.Fatalf("canceled context still ran %d points", ran)
	}
}

func TestSeriesOrdered(t *testing.T) {
	xs := []float64{4, 1, 9, 2}
	s := Series(context.Background(), 3, "sq", xs, func(i int, x float64) float64 { return x * x })
	if s.Name != "sq" || len(s.Points) != len(xs) {
		t.Fatalf("bad series %+v", s)
	}
	for i, x := range xs {
		if s.Points[i].X != x || s.Points[i].Y != x*x {
			t.Fatalf("point %d = %+v, want (%g, %g)", i, s.Points[i], x, x*x)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, par := range []int{1, 2, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 64, 101} {
			var hits [101]atomic.Int64
			shards := Shards(par, n)
			seen := make([]atomic.Bool, shards+1)
			For(par, n, func(shard, lo, hi int) {
				if shard >= shards {
					t.Errorf("par=%d n=%d: shard %d >= Shards()=%d", par, n, shard, shards)
				}
				if seen[shard].Swap(true) {
					t.Errorf("par=%d n=%d: shard %d ran twice", par, n, shard)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if hits[i].Load() != 1 {
					t.Fatalf("par=%d n=%d: index %d covered %d times", par, n, i, hits[i].Load())
				}
			}
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must return at least 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers must pass positive values through")
	}
}

// Package sweep is the deterministic parallel sweep executor: it runs the
// independent points of an experiment sweep (simulated configurations,
// ablation settings, fault policies) concurrently across a worker pool while
// guaranteeing output byte-identical to the serial loop it replaces.
//
// The determinism contract, and how each clause is enforced:
//
//   - Per-point seeds are a pure function of the point index (Seed), never
//     of scheduling or completion order.
//   - Each point records into an isolated *telemetry.Telemetry bundle;
//     MapTel merges the children back into the parent in point-index order
//     after every point has finished, so metric values, trace event order
//     and track registration order all match the serial run.
//   - Results come back as a slice indexed by point, and the Series
//     collector reduces them in index order, so tables and logs are emitted
//     in point order, never in finish order.
//   - par <= 1 takes the exact legacy serial path: the loop body runs inline
//     on the caller's goroutine, the parent bundle is passed straight
//     through (no child bundles, no merge), and no goroutine is spawned.
//
// Callbacks must not write package-level mutable state — every run of a
// sweep may interleave with every other. The detpure analyzer in
// cmd/tianhelint enforces this statically, including writes reached
// through helpers the callback calls.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tianhe/internal/bench"
	"tianhe/internal/telemetry"
)

// Workers normalizes a -par flag value: values <= 0 select
// runtime.GOMAXPROCS(0), anything else passes through.
func Workers(par int) int {
	if par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

// Seed derives the per-point seed for point index i from a base seed: a
// SplitMix64 mix of base and index, so neighbouring points get uncorrelated
// streams and the derivation depends on nothing but (base, i).
func Seed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pointPanic carries a panic out of a worker with its point index, so the
// lowest-index panic is re-raised regardless of scheduling.
type pointPanic struct {
	index int
	value any
}

// Map runs fn over every point concurrently on min(par, len(pts)) workers
// and returns the results in point order. par <= 1 runs the exact serial
// loop inline. A canceled ctx stops workers from starting further points;
// results of unstarted points are the zero value. If any fn panics, the
// panic with the lowest point index is re-raised on the caller after all
// workers have stopped.
func Map[P, R any](ctx context.Context, par int, pts []P, fn func(i int, p P) R) []R {
	out := make([]R, len(pts))
	if len(pts) == 0 {
		return out
	}
	if par <= 1 || len(pts) == 1 {
		for i, p := range pts {
			if ctx.Err() != nil {
				break
			}
			out[i] = fn(i, p)
		}
		return out
	}
	workers := par
	if workers > len(pts) {
		workers = len(pts)
	}
	var next atomic.Int64
	panics := make([]*pointPanic, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pts) || ctx.Err() != nil {
					return
				}
				if pp := runPoint(i, pts[i], fn, out); pp != nil {
					panics[w] = pp
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var first *pointPanic
	for _, pp := range panics {
		if pp != nil && (first == nil || pp.index < first.index) {
			first = pp
		}
	}
	if first != nil {
		panic(fmt.Sprintf("sweep: point %d panicked: %v", first.index, first.value))
	}
	return out
}

// runPoint executes one point, converting a panic into a pointPanic.
func runPoint[P, R any](i int, p P, fn func(i int, p P) R, out []R) (pp *pointPanic) {
	defer func() {
		if r := recover(); r != nil {
			pp = &pointPanic{index: i, value: r}
		}
	}()
	out[i] = fn(i, p)
	return nil
}

// MapTel is Map for instrumented sweeps: with par <= 1 every point receives
// the parent bundle directly (the legacy serial path, bit for bit); with
// par > 1 every point gets an isolated child bundle — enabled exactly when
// the parent is — and the children are merged into the parent in point-index
// order after all points completed.
func MapTel[P, R any](ctx context.Context, par int, tel *telemetry.Telemetry, pts []P, fn func(i int, p P, tel *telemetry.Telemetry) R) []R {
	if par <= 1 || len(pts) <= 1 {
		return Map(ctx, 1, pts, func(i int, p P) R { return fn(i, p, tel) })
	}
	children := make([]*telemetry.Telemetry, len(pts))
	if tel.Enabled() {
		for i := range children {
			// NewChild journals float adds so the merge can replay them in
			// serial order — see telemetry.NewChild.
			children[i] = telemetry.NewChild()
		}
	}
	out := Map(ctx, par, pts, func(i int, p P) R { return fn(i, p, children[i]) })
	for _, child := range children {
		tel.Merge(child)
	}
	return out
}

// Series runs fn over the x values concurrently and collects the resulting
// points into a named bench.Series in index order — the ordered reduction
// for one table column.
func Series(ctx context.Context, par int, name string, xs []float64, fn func(i int, x float64) float64) *bench.Series {
	ys := Map(ctx, par, xs, fn)
	s := &bench.Series{Name: name}
	for i, x := range xs {
		s.Add(x, ys[i])
	}
	return s
}

// For shards [0, n) into min(par, n) contiguous chunks and runs body
// concurrently, one chunk per goroutine: body(shard, lo, hi) covers indices
// [lo, hi). par <= 1 calls body(0, 0, n) inline — the serial path. For is
// the inner parallel-for for loops whose per-index work is independent and
// whose reduction is order-insensitive (max, exact sums of integers); the
// caller owns the per-shard reduction.
func For(par, n int, body func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if par <= 1 || n == 1 {
		body(0, 0, n)
		return
	}
	shards := par
	if shards > n {
		shards = n
	}
	chunk := n / shards
	rem := n % shards
	var wg sync.WaitGroup
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo + chunk
		if s < rem {
			hi++
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			body(s, lo, hi)
		}(s, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Shards returns the shard count For will use for n items at par workers —
// callers size their per-shard reduction buffers with it.
func Shards(par, n int) int {
	if n <= 0 {
		return 0
	}
	if par <= 1 || n == 1 {
		return 1
	}
	if par > n {
		return n
	}
	return par
}

package fault

import (
	"math"
	"strings"
	"testing"

	"tianhe/internal/telemetry"
)

func TestNilInjectorIsHealthy(t *testing.T) {
	var in *Injector
	if f := in.KernelFactor(5); f != 1 {
		t.Fatalf("nil KernelFactor = %v", f)
	}
	if f := in.TransferFactor(5); f != 1 {
		t.Fatalf("nil TransferFactor = %v", f)
	}
	if in.LostIn(0, 1e9) {
		t.Fatal("nil injector lost")
	}
	if r := in.RestoredAt(7); r != 7 {
		t.Fatalf("nil RestoredAt = %v", r)
	}
	if d := in.StretchGPU("k", 0, 3); d != 3 {
		t.Fatalf("nil StretchGPU = %v", d)
	}
	if f := in.CoreFactor(0, 5); f != 1 {
		t.Fatalf("nil CoreFactor = %v", f)
	}
	if dur, drop := in.AdjustMessage(0, 1, 8, 0, 2e-6); dur != 2e-6 || drop {
		t.Fatalf("nil AdjustMessage = %v, %v", dur, drop)
	}
	if _, ok := in.ElementFailAt(); ok {
		t.Fatal("nil injector schedules a failure")
	}
	if in.Events() != nil || in.Seed() != 0 {
		t.Fatal("nil accessors not zero")
	}
	in.SetRanksPerCabinet(4) // must not panic
	in.Instrument(telemetry.New())
}

func TestHealthFactorsCompose(t *testing.T) {
	in := New(1,
		Event{Kind: GPUDegrade, Start: 10, End: 20, Factor: 0.5},
		Event{Kind: GPUDegrade, Start: 15, End: 30, Factor: 0.8},
		Event{Kind: DMADegrade, Start: 12, End: 18, Factor: 0.25},
		Event{Kind: GPULoss, Start: 40, End: 50},
	)
	cases := []struct {
		t          float64
		kern, xfer float64
	}{
		{5, 1, 1},
		{12, 0.5, 0.25},
		{17, 0.5 * 0.8, 0.25},
		{25, 0.8, 1},
		{45, 0, 0},
		{50, 1, 1}, // half-open window: restored exactly at End
	}
	for _, c := range cases {
		if got := in.KernelFactor(c.t); math.Abs(got-c.kern) > 1e-15 {
			t.Errorf("KernelFactor(%v) = %v, want %v", c.t, got, c.kern)
		}
		if got := in.TransferFactor(c.t); math.Abs(got-c.xfer) > 1e-15 {
			t.Errorf("TransferFactor(%v) = %v, want %v", c.t, got, c.xfer)
		}
	}
}

func TestLossWindows(t *testing.T) {
	in := New(1,
		Event{Kind: GPULoss, Start: 10, End: 20},
		Event{Kind: GPULoss, Start: 20, End: 25}, // adjacent: one outage chain
	)
	if !in.LostIn(5, 15) || !in.LostIn(12, 13) || !in.LostIn(24, 99) {
		t.Fatal("overlapping windows not detected")
	}
	if in.LostIn(0, 9) || in.LostIn(25, 30) {
		t.Fatal("phantom loss outside windows")
	}
	// A context created exactly at restore time is healthy.
	if in.LostIn(25, 25) {
		t.Fatal("lost at the restore instant")
	}
	if r := in.RestoredAt(12); r != 25 {
		t.Fatalf("RestoredAt(12) = %v, want 25 (chained windows)", r)
	}
	if r := in.RestoredAt(3); r != 3 {
		t.Fatalf("RestoredAt outside loss = %v", r)
	}
}

func TestStretchInsertsStallOverlap(t *testing.T) {
	in := New(1,
		Event{Kind: GPUStall, Start: 12, End: 15},
		Event{Kind: GPUStall, Start: 40, End: 41},
	)
	cases := []struct {
		start, dur, want float64
	}{
		{0, 5, 5},    // ends before any stall
		{10, 10, 13}, // swallows stall fully: +3
		{13, 4, 6},   // starts inside the stall: +2 remaining
		{10, 29, 33}, // stretched past 40, runs into the second stall too
		{50, 3, 3},   // after all stalls
	}
	for _, c := range cases {
		if got := in.StretchGPU("gemm", c.start, c.dur); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("StretchGPU(%v, %v) = %v, want %v", c.start, c.dur, got, c.want)
		}
	}
}

func TestCoreFactorThrottleAndStormDeterminism(t *testing.T) {
	ev := []Event{
		{Kind: CPUThrottle, Start: 0, End: 100, Factor: 0.5, Core: 1},
		{Kind: CPUThrottle, Start: 0, End: 100, Factor: 0.9, Core: -1},
		{Kind: CPUJitterStorm, Start: 50, End: 100, Magnitude: 0.4},
	}
	a, b := New(7, ev...), New(7, ev...)
	// Outside the storm: pure throttle composition, no randomness.
	if f := a.CoreFactor(1, 10); math.Abs(f-0.45) > 1e-15 {
		t.Fatalf("core 1 factor %v, want 0.45", f)
	}
	if f := a.CoreFactor(0, 10); math.Abs(f-0.9) > 1e-15 {
		t.Fatalf("core 0 factor %v, want 0.9", f)
	}
	// Inside the storm: random but (a) a genuine slowdown, (b) identical
	// across injectors with the same seed, per core in draw order.
	for core := 0; core < 3; core++ {
		for i := 0; i < 20; i++ {
			fa, fb := a.CoreFactor(core, 60), b.CoreFactor(core, 60)
			if fa != fb {
				t.Fatalf("core %d draw %d: %v != %v", core, i, fa, fb)
			}
			if fa <= 0 || fa > 1 {
				t.Fatalf("storm factor %v outside (0, 1]", fa)
			}
		}
	}
}

func TestAdjustMessageDegradeAndCabinetGating(t *testing.T) {
	in := New(3,
		Event{Kind: LinkDegrade, Start: 0, End: 100, Factor: 0.5, CrossCabinetOnly: true},
	)
	in.SetRanksPerCabinet(4)
	if dur, _ := in.AdjustMessage(0, 3, 1024, 10, 2e-6); dur != 2e-6 {
		t.Fatalf("intra-cabinet message degraded: %v", dur)
	}
	if dur, _ := in.AdjustMessage(0, 4, 1024, 10, 2e-6); math.Abs(dur-4e-6) > 1e-18 {
		t.Fatalf("cross-cabinet message %v, want 4e-6", dur)
	}
	// Without topology info every pair is one cabinet: no degrade applies.
	in2 := New(3, Event{Kind: LinkDegrade, Start: 0, End: 100, Factor: 0.5, CrossCabinetOnly: true})
	if dur, _ := in2.AdjustMessage(0, 9, 1024, 10, 2e-6); dur != 2e-6 {
		t.Fatalf("degrade applied without cabinet layout: %v", dur)
	}
}

func TestAdjustMessageDropDeterminism(t *testing.T) {
	ev := []Event{{Kind: LinkDrop, Start: 0, End: 1e6, Magnitude: 0.3}}
	a, b := New(11, ev...), New(11, ev...)
	drops := 0
	for i := 0; i < 500; i++ {
		_, da := a.AdjustMessage(2, 5, 64, float64(i), 1e-6)
		_, db := b.AdjustMessage(2, 5, 64, float64(i), 1e-6)
		if da != db {
			t.Fatalf("attempt %d: drop decision diverged", i)
		}
		if da {
			drops++
		}
	}
	if drops < 100 || drops > 200 {
		t.Fatalf("%d/500 drops at p=0.3 — stream broken", drops)
	}
	// Different senders consume different streams.
	same := 0
	c := New(11, ev...)
	for i := 0; i < 200; i++ {
		_, d2 := a.AdjustMessage(2, 5, 64, float64(i), 1e-6)
		_, d7 := c.AdjustMessage(7, 5, 64, float64(i), 1e-6)
		if d2 == d7 {
			same++
		}
	}
	if same == 200 {
		t.Fatal("rank 2 and rank 7 share a drop stream")
	}
}

func TestElementFailAt(t *testing.T) {
	in := New(1,
		Event{Kind: ElementFail, Start: 90},
		Event{Kind: ElementFail, Start: 40},
	)
	at, ok := in.ElementFailAt()
	if !ok || at != 40 {
		t.Fatalf("ElementFailAt = %v, %v; want 40, true", at, ok)
	}
	if _, ok := New(1).ElementFailAt(); ok {
		t.Fatal("failure scheduled on an empty injector")
	}
}

func TestValidation(t *testing.T) {
	bad := []Event{
		{Kind: GPUDegrade, Start: 5, End: 1, Factor: 0.5},
		{Kind: GPUDegrade, Start: 0, End: 1, Factor: 0},
		{Kind: GPUDegrade, Start: 0, End: 1, Factor: 1.5},
		{Kind: LinkDrop, Start: 0, End: 1, Magnitude: 1.2},
		{Kind: CPUJitterStorm, Start: 0, End: 1, Magnitude: -0.1},
	}
	for i, e := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: event %+v accepted", i, e)
				}
			}()
			New(1, e)
		}()
	}
	// Overlapping stalls are a scheduling error.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overlapping stalls accepted")
			}
		}()
		New(1,
			Event{Kind: GPUStall, Start: 0, End: 5},
			Event{Kind: GPUStall, Start: 4, End: 6},
		)
	}()
}

func TestScenarios(t *testing.T) {
	for _, name := range Scenarios {
		events, err := Scenario(name, 120)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "healthy" {
			if len(events) != 0 {
				t.Fatalf("healthy scenario has %d events", len(events))
			}
			continue
		}
		if len(events) == 0 {
			t.Fatalf("%s: empty scenario", name)
		}
		if _, err := NewScenario(name, 120, 42); err != nil {
			t.Fatalf("NewScenario(%s): %v", name, err)
		}
	}
	if _, err := Scenario("meteor-strike", 120); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario error = %v", err)
	}
	if _, err := Scenario("healthy", 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestInstrumentEmitsScheduleAsTrace(t *testing.T) {
	tel := telemetry.New()
	in, err := NewScenario("jitter-storm", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.Instrument(tel)
	if tel.Trace.Len() != len(in.Events()) {
		t.Fatalf("trace has %d events, schedule has %d", tel.Trace.Len(), len(in.Events()))
	}
	if g := tel.Gauge("fault.scheduled_events").Value(); g != float64(len(in.Events())) {
		t.Fatalf("scheduled_events gauge = %v", g)
	}
	// Dynamic probes: a stretched booking feeds the stall counter.
	in2 := New(1, Event{Kind: GPUStall, Start: 5, End: 6})
	in2.Instrument(tel)
	in2.StretchGPU("gemm", 4, 2)
	if c := tel.Counter("fault.gpu.stall_stretches").Value(); c != 1 {
		t.Fatalf("stall counter = %d", c)
	}
}

func TestKindStrings(t *testing.T) {
	for k := GPUDegrade; k <= ElementFail; k++ {
		if s := k.String(); strings.Contains(s, "fault.kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if s := Kind(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("out-of-range kind string %q", s)
	}
}

package fault

import (
	"testing"

	"tianhe/internal/telemetry"
)

func TestSDCTaskNilInjectorSafe(t *testing.T) {
	var in *Injector
	if _, struck := in.SDCTask(0, 1, 64, 64); struck {
		t.Fatal("nil injector delivered a strike")
	}
	if in.SDCDelivered() != 0 {
		t.Fatal("nil injector counted deliveries")
	}
}

func TestSDCTaskWindowGating(t *testing.T) {
	in := New(7, Event{Kind: SDCKernel, Start: 10, End: 20, Magnitude: 1, Faults: 1})
	if _, struck := in.SDCTask(0, 5, 32, 32); struck {
		t.Fatal("strike before the window")
	}
	if _, struck := in.SDCTask(1, 20, 32, 32); struck {
		t.Fatal("strike at the half-open window end")
	}
	hit, struck := in.SDCTask(2, 15, 32, 32)
	if !struck {
		t.Fatal("no strike inside a Magnitude-1 window")
	}
	if hit.Kind != SDCKernel || hit.Faults != 1 {
		t.Fatalf("hit = %+v, want kind sdc.kernel faults 1", hit)
	}
	if hit.Row < 0 || hit.Row > 32 || hit.Col < 0 || hit.Col > 32 {
		t.Fatalf("hit position (%d,%d) outside the 33x33 encoded tile", hit.Row, hit.Col)
	}
	if hit.Bit < 52 || hit.Bit > 62 {
		t.Fatalf("hit bit %d outside the high mantissa/exponent range", hit.Bit)
	}
	if hit.InChecksum != (hit.Row == 32 || hit.Col == 32) {
		t.Fatalf("InChecksum=%v disagrees with position (%d,%d)", hit.InChecksum, hit.Row, hit.Col)
	}
	if in.SDCDelivered() != 1 {
		t.Fatalf("delivered = %d, want 1", in.SDCDelivered())
	}
}

func TestSDCTaskDeterministicPerTaskIndex(t *testing.T) {
	mk := func() *Injector {
		return New(42, Event{Kind: SDCKernel, Start: 0, End: 100, Magnitude: 0.5, Faults: 1})
	}
	a, b := mk(), mk()
	// Query b in reverse order: strikes must depend only on the task
	// index, never on query order — the parallel-sweep determinism
	// contract.
	type rec struct {
		hit    SDCHit
		struck bool
	}
	got := make([]rec, 64)
	want := make([]rec, 64)
	for i := 0; i < 64; i++ {
		h, s := a.SDCTask(i, 50, 128, 128)
		want[i] = rec{h, s}
	}
	for i := 63; i >= 0; i-- {
		h, s := b.SDCTask(i, 50, 128, 128)
		got[i] = rec{h, s}
	}
	struck := 0
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("task %d strike differs with query order: %+v vs %+v", i, want[i], got[i])
		}
		if want[i].struck {
			struck++
		}
	}
	if struck == 0 || struck == 64 {
		t.Fatalf("strike count %d/64 not consistent with Magnitude 0.5", struck)
	}
	// Replaying the same task index replays the same decision.
	h1, s1 := mk().SDCTask(7, 50, 128, 128)
	h2, s2 := mk().SDCTask(7, 50, 128, 128)
	if h1 != h2 || s1 != s2 {
		t.Fatal("same task index replayed differently")
	}
}

func TestSDCBurstEscalates(t *testing.T) {
	in := New(3, Event{Kind: SDCKernel, Start: 0, End: 10, Magnitude: 1, Faults: 3})
	hit, struck := in.SDCTask(0, 5, 64, 64)
	if !struck || hit.Faults != 3 {
		t.Fatalf("burst hit = %+v struck=%v, want 3 faults", hit, struck)
	}
}

func TestSDCKindsDoNotPerturbTiming(t *testing.T) {
	in := New(5, Event{Kind: SDCKernel, Start: 0, End: 100, Magnitude: 1, Faults: 1})
	if f := in.KernelFactor(50); f != 1 {
		t.Fatalf("SDC window changed the kernel factor to %v", f)
	}
	if f := in.TransferFactor(50); f != 1 {
		t.Fatalf("SDC window changed the transfer factor to %v", f)
	}
	if in.LostIn(0, 100) {
		t.Fatal("SDC window reported a device loss")
	}
}

func TestScenarioComposition(t *testing.T) {
	single, err := Scenario("sdc-single", 100)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Scenario("degraded-gpu", 100)
	if err != nil {
		t.Fatal(err)
	}
	both, err := Scenario("sdc-single+degraded-gpu", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != len(single)+len(degraded) {
		t.Fatalf("composed schedule has %d events, want %d", len(both), len(single)+len(degraded))
	}
	for i, e := range single {
		if both[i] != e {
			t.Fatalf("composed event %d = %+v, want %+v", i, both[i], e)
		}
	}
	for i, e := range degraded {
		if both[len(single)+i] != e {
			t.Fatalf("composed event %d = %+v, want %+v", len(single)+i, both[len(single)+i], e)
		}
	}
	if _, err := Scenario("sdc-single+no-such-scenario", 100); err == nil {
		t.Fatal("unknown compound part did not error")
	}
	// Composing with healthy is the identity.
	alone, err := Scenario("sdc-dma+healthy", 100)
	if err != nil {
		t.Fatal(err)
	}
	dma, _ := Scenario("sdc-dma", 100)
	if len(alone) != len(dma) {
		t.Fatalf("healthy composition changed the schedule: %d vs %d events", len(alone), len(dma))
	}
}

func TestSDCScenariosValidate(t *testing.T) {
	for _, name := range []string{"sdc-single", "sdc-dma", "sdc-burst"} {
		in, err := NewScenario(name, 123.0, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(in.Events()) == 0 {
			t.Fatalf("%s schedules no events", name)
		}
	}
}

func TestSDCInstrumented(t *testing.T) {
	tel := telemetry.New()
	in := New(11, Event{Kind: SDCKernel, Start: 0, End: 10, Magnitude: 1, Faults: 1})
	in.Instrument(tel)
	in.SDCTask(0, 5, 16, 16)
	in.SDCTask(1, 5, 16, 16)
	if got := tel.Counter("fault.sdc.strikes").Value(); got != 2 {
		t.Fatalf("fault.sdc.strikes = %d, want 2", got)
	}
}

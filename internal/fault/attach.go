package fault

import (
	"tianhe/internal/element"
)

// Attach wires the injector into every hook a compute element exposes: the
// GPU's health interface, the GPU command queue's stall-stretch hook, and
// the per-core CPU throttle. A nil injector attaches nothing, preserving
// the models' nil-hook fast paths — the hardware then runs with zero fault
// overhead rather than through no-op hooks.
//
// One injector serves one element (its jitter streams are keyed by core
// index); build a fresh injector per element. MPI wiring is separate:
// pass the injector as mpi.Config.LinkFault and, for CrossCabinetOnly
// events, call SetRanksPerCabinet with the world's cabinet layout.
func Attach(in *Injector, el *element.Element) {
	if in == nil {
		return
	}
	el.GPU.SetHealth(in)
	el.GPU.Queue.SetStretch(in.StretchGPU)
	el.CPU.SetThrottle(in.CoreFactor)
}

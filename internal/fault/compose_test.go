package fault

import (
	"testing"
)

// TestElementFailComposesWithEveryFaultClass: the "+" composition layers
// element death onto soft errors and device loss in one schedule — the exact
// failure cocktail elastic recovery must survive. The element-fail part must
// come through unchanged, and injector views that other subsystems key off
// (SDC windows, GPU loss, element failures) must all see their events.
func TestElementFailComposesWithEveryFaultClass(t *testing.T) {
	const horizon = 100.0
	ef, err := Scenario("element-fail", horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(ef) != 1 || ef[0].Kind != ElementFail || ef[0].Start != 0.50*horizon {
		t.Fatalf("element-fail schedule = %+v, want one ElementFail at half horizon", ef)
	}
	for _, other := range []string{"sdc-single", "sdc-dma", "sdc-burst", "lost-gpu"} {
		part, err := Scenario(other, horizon)
		if err != nil {
			t.Fatal(err)
		}
		both, err := Scenario("element-fail+"+other, horizon)
		if err != nil {
			t.Fatalf("element-fail+%s: %v", other, err)
		}
		if len(both) != len(ef)+len(part) {
			t.Fatalf("element-fail+%s has %d events, want %d", other, len(both), len(ef)+len(part))
		}
		in, err := NewScenario("element-fail+"+other, horizon, 42)
		if err != nil {
			t.Fatal(err)
		}
		fs := in.ElementFailures()
		if len(fs) != 1 || fs[0].Start != 0.50*horizon {
			t.Fatalf("element-fail+%s: injector reports failures %+v", other, fs)
		}
		if other == "lost-gpu" && !in.LostIn(0, horizon) {
			t.Fatalf("element-fail+%s: injector lost the GPU-loss window", other)
		}
	}
}

// TestComposedScenarioDeterministic: two injectors built from the same
// composed name, horizon and seed must agree on everything downstream
// consumers read — the event schedule, the element-failure view, and the
// per-task SDC strike plan — so a composed fault run replays bit-for-bit.
func TestComposedScenarioDeterministic(t *testing.T) {
	const name = "element-fail+sdc-single+lost-gpu"
	build := func() *Injector {
		in, err := NewScenario(name, 100, 2009)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := build(), build()
	ae, be := a.Events(), b.Events()
	if len(ae) != len(be) {
		t.Fatalf("schedules differ in length: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
	af, bf := a.ElementFailures(), b.ElementFailures()
	if len(af) != 1 || len(bf) != 1 || af[0] != bf[0] {
		t.Fatalf("element-failure views differ: %+v vs %+v", af, bf)
	}
	// The strike plan is keyed by task index and drain time; the two
	// injectors must hand out identical hits task for task.
	for task := 0; task < 200; task++ {
		drain := 20.0 + float64(task)*0.2
		ha, oka := a.SDCTask(task, drain, 128, 128)
		hb, okb := b.SDCTask(task, drain, 128, 128)
		if oka != okb || ha != hb {
			t.Fatalf("task %d strike differs: (%+v %v) vs (%+v %v)", task, ha, oka, hb, okb)
		}
	}
	if a.SDCDelivered() != b.SDCDelivered() {
		t.Fatalf("delivered counts differ: %d vs %d", a.SDCDelivered(), b.SDCDelivered())
	}
}

// Package fault is the deterministic fault-injection subsystem: a
// virtual-time fault scheduler that composes scenarios — GPU rate
// degradation and full device loss, ECC-style stall spans on the GPU
// timeline, per-core CPU throttle and jitter storms, DMA bandwidth
// collapse, cross-cabinet link degradation and transient message loss —
// and injects them through the small hook interfaces the hardware models
// expose (gpu.Health, cpu.SetThrottle, sim.Timeline.SetStretch,
// mpi.LinkFault).
//
// Determinism: every stochastic decision draws from named SplitMix64
// streams derived from the injector's seed — per sender rank for message
// drops, per core for jitter storms — never from wall clock, so a fault
// run regenerates bit-identically for a fixed seed even though MPI ranks
// execute on concurrent goroutines (each rank only consumes its own
// stream, in its own program order).
//
// Nil contract: like telemetry's nil bundle, a nil *Injector is the
// disabled mode — every method returns the healthy value, and the hot
// paths of the hardware models pay a single nil check when no injector is
// attached (see BenchmarkFaultHookOverhead at the repository root).
// Methods are always nil-safe; struct fields are not, so functions taking
// an injector parameter must nil-check before touching fields (enforced by
// the faultnil analyzer).
package fault

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tianhe/internal/sim"
	"tianhe/internal/telemetry"
)

// Kind classifies one fault event.
type Kind int

const (
	// GPUDegrade multiplies the GPU kernel rate by Factor for the window
	// (thermal throttling, downclocked engine).
	GPUDegrade Kind = iota
	// GPULoss makes the device unreachable for the window and poisons any
	// context created before it (gpu.Device.ContextDead).
	GPULoss
	// GPUStall freezes the GPU command queue for the window: operations in
	// flight stretch by the overlap (ECC scrub, ring recovery).
	GPUStall
	// DMADegrade multiplies the CPU-GPU transfer rate by Factor (PCIe link
	// retraining to a lower width/speed).
	DMADegrade
	// CPUThrottle multiplies the rate of core Core (all cores when Core < 0)
	// by Factor for the window (thermal or power capping).
	CPUThrottle
	// CPUJitterStorm draws a per-slice slowdown factor exp(-|N(0, Magnitude)|)
	// on every core for the window (OS noise bursts, daemon storms).
	CPUJitterStorm
	// LinkDegrade multiplies the network bandwidth by Factor for the window
	// (CrossCabinetOnly limits it to inter-cabinet messages).
	LinkDegrade
	// LinkDrop drops each message transmission with probability Magnitude
	// during the window (CrossCabinetOnly limits it likewise).
	LinkDrop
	// ElementFail kills the whole element at Start; linpacksim's failover
	// path restarts it from the last checkpoint.
	ElementFail
	// SDCKernel flips bits in GPU task outputs: each task drained during
	// the window is struck with probability Magnitude, corrupting Faults
	// elements (0 means 1). Strikes never perturb timing by themselves —
	// the ABFT verification layer detects and recovers them.
	SDCKernel
	// SDCDMA flips bits in DMA transfer buffers: same strike model as
	// SDCKernel, hitting the task's output on its way back to the host.
	SDCDMA
)

var kindNames = [...]string{
	"gpu.degrade", "gpu.loss", "gpu.stall", "dma.degrade",
	"cpu.throttle", "cpu.jitter_storm", "link.degrade", "link.drop",
	"element.fail", "sdc.kernel", "sdc.dma",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("fault.kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault: a kind, a virtual-time window and its
// severity. Degrade kinds use Factor (a rate multiplier in (0, 1]);
// LinkDrop and CPUJitterStorm use Magnitude (a probability, resp. a
// lognormal sigma).
type Event struct {
	Kind       Kind
	Start, End sim.Time
	Factor     float64
	Magnitude  float64
	// Core targets one compute core for CPUThrottle; negative means all.
	Core int
	// CrossCabinetOnly restricts link faults to inter-cabinet messages.
	CrossCabinetOnly bool
	// Faults is how many elements an SDC strike corrupts in one task's
	// output tile (0 selects 1). A single fault is localizable and
	// correctable by task recomputation; more escalate to checkpoint
	// restore (see abft.Classify).
	Faults int
}

// active reports whether the event covers t. Windows are half-open
// [Start, End): a loss ending at t is restored at t.
func (e Event) active(t sim.Time) bool { return e.Start <= t && t < e.End }

func (e Event) validate() error {
	// Point events (ElementFail) leave End zero; windows must not run
	// backwards.
	if e.End != 0 && e.End < e.Start {
		return fmt.Errorf("fault: %s window [%v, %v) runs backwards", e.Kind, e.Start, e.End)
	}
	switch e.Kind {
	case GPUDegrade, DMADegrade, CPUThrottle, LinkDegrade:
		if !(e.Factor > 0 && e.Factor <= 1) {
			return fmt.Errorf("fault: %s factor %v outside (0, 1]", e.Kind, e.Factor)
		}
	case LinkDrop:
		if e.Magnitude < 0 || e.Magnitude > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0, 1]", e.Kind, e.Magnitude)
		}
	case CPUJitterStorm:
		if e.Magnitude < 0 {
			return fmt.Errorf("fault: %s sigma %v negative", e.Kind, e.Magnitude)
		}
	case SDCKernel, SDCDMA:
		if e.Magnitude < 0 || e.Magnitude > 1 {
			return fmt.Errorf("fault: %s strike probability %v outside [0, 1]", e.Kind, e.Magnitude)
		}
		if e.Faults < 0 {
			return fmt.Errorf("fault: %s fault count %d negative", e.Kind, e.Faults)
		}
	}
	return nil
}

// Injector schedules a set of fault events and implements every hook the
// hardware models expose. One injector serves one compute element (its
// per-core jitter streams are keyed by core index) plus one MPI world (its
// drop streams are keyed by sender rank).
type Injector struct {
	seed            uint64
	events          []Event
	stalls          []Event // GPUStall events, sorted by Start
	ranksPerCabinet int

	mu           sync.Mutex
	netRNG       map[int]*sim.RNG
	coreRNG      map[int]*sim.RNG
	sdcDelivered int64

	probes *injectorProbes // nil when telemetry is disabled
}

// injectorProbes counts dynamic fault applications (scheduled windows are
// emitted once by Instrument; these fire as the simulation hits them).
type injectorProbes struct {
	stalls     *telemetry.Counter // GPU queue operations stretched
	stallSec   *telemetry.Gauge   // total stretch inserted, virtual seconds
	jitterHits *telemetry.Counter // storm draws applied to CPU slices
	sdcStrikes *telemetry.Counter // SDC strikes delivered to task outputs
}

// New builds an injector over the given events. The seed feeds the named
// decision streams; events are validated and may overlap (overlapping
// degrade factors multiply; overlapping stalls must not be scheduled).
func New(seed uint64, events ...Event) *Injector {
	in := &Injector{
		seed:    seed,
		events:  append([]Event(nil), events...),
		netRNG:  make(map[int]*sim.RNG),
		coreRNG: make(map[int]*sim.RNG),
	}
	for _, e := range in.events {
		if err := e.validate(); err != nil {
			panic(err.Error())
		}
		if e.Kind == GPUStall {
			in.stalls = append(in.stalls, e)
		}
	}
	sort.Slice(in.stalls, func(i, j int) bool { return in.stalls[i].Start < in.stalls[j].Start })
	for i := 1; i < len(in.stalls); i++ {
		if in.stalls[i].Start < in.stalls[i-1].End {
			panic("fault: overlapping gpu.stall windows")
		}
	}
	return in
}

// Seed returns the injector's decision-stream seed; 0 for a nil injector.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Events returns a copy of the scheduled events; nil for a nil injector.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	return append([]Event(nil), in.events...)
}

// SetRanksPerCabinet teaches the injector the world's cabinet layout so
// CrossCabinetOnly link events can tell intra- from inter-cabinet messages
// (0, the default, treats every rank pair as one cabinet).
func (in *Injector) SetRanksPerCabinet(n int) {
	if in == nil {
		return
	}
	in.ranksPerCabinet = n
}

// Instrument attaches telemetry: every scheduled window becomes a span on
// the "fault" trace track (instants for point events), and dynamic
// applications (queue stretches, storm draws) feed counters. Nil injector
// or disabled bundle no-op.
func (in *Injector) Instrument(tel *telemetry.Telemetry) {
	if in == nil || !tel.Enabled() {
		return
	}
	in.probes = &injectorProbes{
		stalls:     tel.Counter("fault.gpu.stall_stretches"),
		stallSec:   tel.Gauge("fault.gpu.stall_seconds"),
		jitterHits: tel.Counter("fault.cpu.storm_draws"),
		sdcStrikes: tel.Counter("fault.sdc.strikes"),
	}
	tel.Gauge("fault.scheduled_events").Set(float64(len(in.events)))
	for _, e := range in.events {
		if e.End > e.Start {
			tel.Trace.Span("fault", "fault", e.Kind.String(), e.Start, e.End)
		} else {
			tel.Trace.Instant("fault", "fault", e.Kind.String(), e.Start)
		}
	}
}

// ---- gpu.Health -----------------------------------------------------------

// KernelFactor implements gpu.Health: the product of active GPUDegrade
// factors, or 0 while the device is lost.
func (in *Injector) KernelFactor(t sim.Time) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	for _, e := range in.events {
		switch e.Kind {
		case GPULoss:
			if e.active(t) {
				return 0
			}
		case GPUDegrade:
			if e.active(t) {
				f *= e.Factor
			}
		}
	}
	return f
}

// TransferFactor implements gpu.Health for the DMA engine.
func (in *Injector) TransferFactor(t sim.Time) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	for _, e := range in.events {
		switch e.Kind {
		case GPULoss:
			if e.active(t) {
				return 0
			}
		case DMADegrade:
			if e.active(t) {
				f *= e.Factor
			}
		}
	}
	return f
}

// LostIn implements gpu.Health: whether any loss window overlaps [from, to].
func (in *Injector) LostIn(from, to sim.Time) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind == GPULoss && e.Start <= to && e.End > from {
			return true
		}
	}
	return false
}

// RestoredAt implements gpu.Health: the end of the loss chain covering t
// (t itself when the device answers at t).
func (in *Injector) RestoredAt(t sim.Time) sim.Time {
	if in == nil {
		return t
	}
	for changed := true; changed; {
		changed = false
		for _, e := range in.events {
			if e.Kind == GPULoss && e.active(t) {
				t = e.End
				changed = true
			}
		}
	}
	return t
}

// ---- sim.Timeline stretch (GPU queue) -------------------------------------

// StretchGPU is the sim.Timeline stretch hook for the GPU command queue: an
// operation of the given duration starting at start is extended by the
// length of every GPUStall window it runs into — the engine freezes, the
// operation resumes after the scrub.
func (in *Injector) StretchGPU(label string, start, dur sim.Time) sim.Time {
	if in == nil || len(in.stalls) == 0 {
		return dur
	}
	end := start + dur
	for _, e := range in.stalls {
		if e.Start >= end {
			break
		}
		if e.End <= start {
			continue
		}
		lo := e.Start
		if lo < start {
			lo = start
		}
		end += e.End - lo
	}
	if stretched := end - start; stretched > dur {
		if pr := in.probes; pr != nil {
			pr.stalls.Inc()
			pr.stallSec.Add(stretched - dur)
		}
		return stretched
	}
	return dur
}

// ---- cpu throttle ---------------------------------------------------------

// CoreFactor is the cpu.SetThrottle hook: the product of active throttle
// factors targeting the core, times a fresh storm draw per active jitter
// storm. Storm draws come from the per-core stream "fault/cpu/core<i>", so
// they are deterministic in the core's slice order.
func (in *Injector) CoreFactor(core int, t sim.Time) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	for _, e := range in.events {
		switch e.Kind {
		case CPUThrottle:
			if e.active(t) && (e.Core < 0 || e.Core == core) {
				f *= e.Factor
			}
		case CPUJitterStorm:
			if e.active(t) && e.Magnitude > 0 {
				n := in.coreStream(core).Normal(0, e.Magnitude)
				f *= math.Exp(-math.Abs(n))
				if pr := in.probes; pr != nil {
					pr.jitterHits.Inc()
				}
			}
		}
	}
	return f
}

// ---- mpi.LinkFault --------------------------------------------------------

// AdjustMessage implements mpi.LinkFault: active LinkDegrade windows divide
// the message's wire time by their factor, and active LinkDrop windows drop
// the transmission with their probability, drawn from the sender's stream
// "fault/net/rank<src>" — each rank's goroutine consumes only its own
// stream, keeping concurrent worlds bit-reproducible.
func (in *Injector) AdjustMessage(src, dst int, bytes int64, sendAt, healthy sim.Time) (sim.Time, bool) {
	if in == nil {
		return healthy, false
	}
	dur := healthy
	dropped := false
	cross := in.crossCabinet(src, dst)
	for _, e := range in.events {
		switch e.Kind {
		case LinkDegrade:
			if e.active(sendAt) && (!e.CrossCabinetOnly || cross) {
				dur /= e.Factor
			}
		case LinkDrop:
			if e.active(sendAt) && (!e.CrossCabinetOnly || cross) && e.Magnitude > 0 {
				if in.senderStream(src).Float64() < e.Magnitude {
					dropped = true
				}
			}
		}
	}
	return dur, dropped
}

func (in *Injector) crossCabinet(a, b int) bool {
	if in.ranksPerCabinet <= 0 {
		return false
	}
	return a/in.ranksPerCabinet != b/in.ranksPerCabinet
}

// ---- element failure ------------------------------------------------------

// ElementFailAt returns the virtual time of the first scheduled element
// failure; ok is false when none is scheduled (or the injector is nil).
// It is shorthand for ElementFailures()[0]; elastic-recovery consumers
// that survive K sequential failures should walk the full schedule.
func (in *Injector) ElementFailAt() (sim.Time, bool) {
	fs := in.ElementFailures()
	if len(fs) == 0 {
		return 0, false
	}
	return fs[0].Start, true
}

// ElementFailures returns every scheduled element failure in start order
// (ties broken by schedule position, so composed scenarios replay
// identically). Event.Core names the victim element when the scenario set
// one; consumers map it onto their own element space. Nil-safe: a nil
// injector has no failures.
func (in *Injector) ElementFailures() []Event {
	if in == nil {
		return nil
	}
	var fs []Event
	for _, e := range in.events {
		if e.Kind == ElementFail {
			fs = append(fs, e)
		}
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Start < fs[j].Start })
	return fs
}

// GPURestoreEnd returns the end of the last scheduled GPU loss window —
// the moment the device answers for good — and whether any loss is
// scheduled at all. Recovery metrics are measured from this instant.
func (in *Injector) GPURestoreEnd() (sim.Time, bool) {
	if in == nil {
		return 0, false
	}
	last, ok := sim.Time(0), false
	for _, e := range in.events {
		if e.Kind == GPULoss && (!ok || e.End > last) {
			last, ok = e.End, true
		}
	}
	return last, ok
}

// ---- silent data corruption -----------------------------------------------

// SDCHit describes one delivered corruption strike on a task's output tile.
// Coordinates index the checksum-encoded (rows+1) x (cols+1) tile: Row ==
// rows or Col == cols means the checksum row/column itself was hit, which
// makes the corruption uncorrectable (see abft.Classify).
type SDCHit struct {
	// Kind is SDCKernel or SDCDMA — where the flip happened.
	Kind Kind
	// Row, Col locate the first corrupted element in the encoded tile.
	Row, Col int
	// Bit is the flipped IEEE-754 bit (a high exponent bit: the delta is
	// always far above the verification tolerance, so a delivered strike
	// is a detectable strike).
	Bit int
	// Faults is how many elements this strike corrupted.
	Faults int
	// InChecksum reports whether any corrupted element landed in the
	// checksum row or column.
	InChecksum bool
}

// SDCTask decides whether the task drained at the given time is struck by
// silent data corruption. taskIndex must be the task's position in the
// run's global drain order: every decision draws from the per-task stream
// "fault/sdc/task<i>", so strikes depend only on the seed and the task
// index — identical whether tasks verify serially or on a worker pool.
// rows x cols is the task's output tile (excluding checksums). Nil
// injector, or no active SDC window, reports no strike.
func (in *Injector) SDCTask(taskIndex int, drain sim.Time, rows, cols int) (SDCHit, bool) {
	if in == nil {
		return SDCHit{}, false
	}
	var hit SDCHit
	struck := false
	// One fresh stream per (seed, task index): repeated queries for the
	// same task replay identically, and no per-task state accumulates.
	var r *sim.RNG
	for _, e := range in.events {
		if (e.Kind != SDCKernel && e.Kind != SDCDMA) || !e.active(drain) || e.Magnitude <= 0 {
			continue
		}
		if r == nil {
			r = sim.NewStream(in.seed, fmt.Sprintf("fault/sdc/task%d", taskIndex))
		}
		if r.Float64() >= e.Magnitude {
			continue
		}
		faults := e.Faults
		if faults <= 0 {
			faults = 1
		}
		if !struck {
			struck = true
			hit.Kind = e.Kind
			// The strike position is uniform over the encoded tile, so the
			// checksum row/column is hit with its natural probability
			// (m+n+1 out of (m+1)(n+1) elements — vanishing for the
			// paper's 8192-wide tiles).
			hit.Row = r.Intn(rows + 1)
			hit.Col = r.Intn(cols + 1)
			hit.Bit = 52 + r.Intn(11) // high mantissa / exponent bits
			hit.InChecksum = hit.Row == rows || hit.Col == cols
			hit.Faults = faults
			for extra := 1; extra < faults; extra++ {
				ri, ci := r.Intn(rows+1), r.Intn(cols+1)
				if ri == rows || ci == cols {
					hit.InChecksum = true
				}
			}
		} else {
			// Overlapping SDC windows compound: more faults in the tile.
			hit.Faults += faults
		}
	}
	if struck {
		in.mu.Lock()
		in.sdcDelivered++
		in.mu.Unlock()
		if pr := in.probes; pr != nil {
			pr.sdcStrikes.Inc()
		}
	}
	return hit, struck
}

// SDCDelivered returns how many corruption strikes the injector has
// delivered so far; 0 for a nil injector.
func (in *Injector) SDCDelivered() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sdcDelivered
}

// ---- decision streams -----------------------------------------------------

func (in *Injector) senderStream(rank int) *sim.RNG {
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.netRNG[rank]
	if !ok {
		r = sim.NewStream(in.seed, fmt.Sprintf("fault/net/rank%d", rank))
		in.netRNG[rank] = r
	}
	return r
}

func (in *Injector) coreStream(core int) *sim.RNG {
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.coreRNG[core]
	if !ok {
		r = sim.NewStream(in.seed, fmt.Sprintf("fault/cpu/core%d", core))
		in.coreRNG[core] = r
	}
	return r
}

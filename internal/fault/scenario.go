package fault

import (
	"fmt"
	"strings"

	"tianhe/internal/sim"
)

// Scenarios lists the named fault scenarios in sweep order. "healthy" is
// the fault-free reference every other scenario is measured against.
var Scenarios = []string{
	"healthy", "degraded-gpu", "lost-gpu", "flaky-net", "jitter-storm", "element-fail",
	"sdc-single", "sdc-dma", "sdc-burst",
}

// Scenario returns the event schedule for a named scenario, scaled to a
// run whose healthy makespan is horizon: window boundaries are fixed
// fractions of the horizon, so the same scenario stresses the same phase
// of a run regardless of problem size. "healthy" returns no events (attach
// its empty injector to measure hook overhead). Compound names joined with
// "+" (e.g. "sdc-single+degraded-gpu") concatenate the schedules of every
// part — soft errors layer onto timing faults. Unknown names error.
func Scenario(name string, horizon sim.Time) ([]Event, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("fault: scenario horizon %v not positive", horizon)
	}
	if parts := strings.Split(name, "+"); len(parts) > 1 {
		var all []Event
		for _, p := range parts {
			evs, err := Scenario(p, horizon)
			if err != nil {
				return nil, err
			}
			all = append(all, evs...)
		}
		return all, nil
	}
	h := horizon
	switch name {
	case "healthy":
		return nil, nil
	case "degraded-gpu":
		// Mid-run thermal throttle: the GPU drops to 45% of its rate and
		// the PCIe link retrains to half width for the same window.
		return []Event{
			{Kind: GPUDegrade, Start: 0.30 * h, End: 0.75 * h, Factor: 0.45},
			{Kind: DMADegrade, Start: 0.30 * h, End: 0.75 * h, Factor: 0.50},
		}, nil
	case "lost-gpu":
		// Full device loss for a quarter of the run. The context created
		// before the loss is poisoned; only fault-aware runtimes reinit
		// after restore.
		return []Event{
			{Kind: GPULoss, Start: 0.35 * h, End: 0.60 * h},
		}, nil
	case "flaky-net":
		// Transient message loss the whole run, plus a mid-run bandwidth
		// collapse confined to cross-cabinet links.
		return []Event{
			{Kind: LinkDrop, Start: 0, End: 10 * h, Magnitude: 0.04},
			{Kind: LinkDegrade, Start: 0.40 * h, End: 0.70 * h, Factor: 0.60, CrossCabinetOnly: true},
		}, nil
	case "jitter-storm":
		// OS-noise burst on every core, a throttled core 0, and three
		// ECC-style scrub stalls freezing the GPU queue.
		return []Event{
			{Kind: CPUJitterStorm, Start: 0.30 * h, End: 0.80 * h, Magnitude: 0.35},
			{Kind: CPUThrottle, Start: 0.30 * h, End: 0.80 * h, Factor: 0.55, Core: 0},
			{Kind: GPUStall, Start: 0.45 * h, End: 0.46 * h},
			{Kind: GPUStall, Start: 0.60 * h, End: 0.61 * h},
			{Kind: GPUStall, Start: 0.72 * h, End: 0.73 * h},
		}, nil
	case "element-fail":
		// The whole element dies halfway through; linpacksim's failover
		// path restarts it from the last checkpoint.
		return []Event{
			{Kind: ElementFail, Start: 0.50 * h},
		}, nil
	case "sdc-single":
		// Single-element kernel flips over most of the run: each GPU task
		// drained in the window is struck with probability 0.35, flipping
		// one high exponent bit. ABFT detects every strike, localizes it,
		// and recovers by recomputing just the affected task — the
		// acceptance scenario of the SDC sweep.
		return []Event{
			{Kind: SDCKernel, Start: 0.10 * h, End: 0.90 * h, Magnitude: 0.35, Faults: 1},
		}, nil
	case "sdc-dma":
		// Flips on the DMA return path instead of in the kernel: the same
		// detect/localize/recompute story, attributed to the transfer.
		return []Event{
			{Kind: SDCDMA, Start: 0.15 * h, End: 0.85 * h, Magnitude: 0.30, Faults: 1},
		}, nil
	case "sdc-burst":
		// A concentrated burst of multi-element corruption mid-run: three
		// flips per struck tile defeat single-element localization, so
		// every strike escalates to the checkpoint restore path.
		return []Event{
			{Kind: SDCKernel, Start: 0.40 * h, End: 0.60 * h, Magnitude: 0.50, Faults: 3},
		}, nil
	}
	return nil, fmt.Errorf("fault: unknown scenario %q (have %v)", name, Scenarios)
}

// NewScenario builds an injector for a named scenario (see Scenario).
func NewScenario(name string, horizon sim.Time, seed uint64) (*Injector, error) {
	events, err := Scenario(name, horizon)
	if err != nil {
		return nil, err
	}
	return New(seed, events...), nil
}

# Development targets. `make check` is the gate every change must pass:
# it builds all packages, vets them, runs the tianhelint static analyzer
# suite, and runs the full test suite (under the race detector where the
# toolchain has cgo).

.PHONY: check build test vet lint fuzz bench faultgolden recovergolden graphgolden graphbench parbench servebench

check:
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

# lint runs the repository's custom invariant analyzers (see
# internal/analyzers and the README "Static analysis" section), with the
# interprocedural checks over the whole-module call graph and the
# clock/rand contract applied inside _test.go files too.
lint:
	go run ./cmd/tianhelint -tests -par 8

test:
	go test ./...

# faultgolden runs the short fault-injection golden runs on their own:
# the healthy scenario (hook overhead must be exactly zero) and the
# lost-gpu scenario (adaptive recovers to >=90% of healthy steady state,
# static/trained stall). They also run as part of `make test`/`make check`;
# this target surfaces their verdicts verbosely.
faultgolden:
	go test -run 'TestHealthyScenarioHasZeroHookOverhead|TestLostGPUAcceptance' -v ./cmd/faultbench

# recovergolden surfaces the elastic-recovery goldens verbosely: the shrink
# mapping of the survivor protocol (internal/recover) and the full rendered
# recovery-vs-restart comparison including the bit-identity acceptance
# (internal/experiments). Regenerate deliberately with -update.
recovergolden:
	go test -run 'TestShrinkMappingGolden' -v ./internal/recover
	go test -run 'TestElasticRecoveryGolden|TestElasticRecoveryAcceptance' -v ./internal/experiments

# graphgolden regenerates the canonical dataflow schedules (graph-LU with
# look-ahead 1 and the 3-D stencil sweep) and diffs them against the
# committed goldens in cmd/graphtrace/testdata — any placement, ordering,
# or booked-time drift in the taskgraph scheduler fails the diff. Regenerate
# deliberately with `go test ./cmd/graphtrace -update`.
graphgolden:
	go run ./cmd/graphtrace -workload lu -golden | diff cmd/graphtrace/testdata/lu.golden -
	go run ./cmd/graphtrace -workload lu -golden -hybrid | diff cmd/graphtrace/testdata/lu-hybrid.golden -
	go run ./cmd/graphtrace -workload stencil -golden | diff cmd/graphtrace/testdata/stencil.golden -
	go run ./cmd/graphtrace -workload stencil -golden -hybrid | diff cmd/graphtrace/testdata/stencil-hybrid.golden -

# graphbench regenerates the graph-LU benchmark (monolithic vs graph at each
# look-ahead depth vs graph+hybrid, N=46080) into a fresh artifact and guards
# it against the committed BENCH_graphlu.json baseline: every mode's GFLOPS
# must stay within 10%. Virtual time makes the run bit-exact from the seed,
# so any drift the guard catches is a real code change — regenerate the
# baseline deliberately with
# `go run ./cmd/graphtrace -bench -o BENCH_graphlu.json` and commit it.
graphbench:
	go run ./cmd/graphtrace -bench -par 8 -o /tmp/tianhe_graphbench.json -baseline BENCH_graphlu.json

# fuzz gives each native fuzz target a short fixed budget on top of its
# checked-in seed corpus. New crashers land in testdata/fuzz/ — commit them.
fuzz:
	go test -run '^$$' -fuzz '^FuzzDGEMMPackedVsNaive$$' -fuzztime 10s ./internal/blas
	go test -run '^$$' -fuzz '^FuzzScheduleInvariants$$' -fuzztime 10s ./internal/pipeline
	go test -run '^$$' -fuzz '^FuzzChecksumCodec$$' -fuzztime 10s ./internal/abft
	go test -run '^$$' -fuzz '^FuzzJobCodec$$' -fuzztime 10s ./internal/serve
	go test -run '^$$' -fuzz '^FuzzGraphSchedule$$' -fuzztime 10s ./internal/taskgraph
	go test -run '^$$' -fuzz '^FuzzComposedScenarios$$' -fuzztime 10s ./internal/linpacksim

bench:
	go test -run xxx -bench . -benchtime 10x .

# servebench regenerates the serving benchmark (1200 open-loop clients,
# healthy + lost-gpu sweeps) into a fresh artifact and guards it against
# the committed BENCH_serve.json baseline: peak and per-rate healthy
# throughput must stay within 10%. Virtual time makes the run bit-exact
# from the seed, so any drift the guard catches is a real code change —
# regenerate the baseline deliberately with
# `go run ./cmd/tianhed -bench -o BENCH_serve.json` and commit it.
servebench:
	go run ./cmd/tianhed -bench -par 8 -o /tmp/tianhe_servebench.json -baseline BENCH_serve.json

# parbench measures the parallel sweep runner: faultbench and scalebench at
# -par 1 vs -par 8 (override with PAR=n), asserting byte-identical output
# and reporting wall-clock speedups together with the host's core count.
parbench:
	./scripts/parbench.sh

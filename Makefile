# Development targets. `make check` is the gate every change must pass:
# it builds all packages, vets them, and runs the full test suite under the
# race detector.

.PHONY: check build test vet bench

check:
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

bench:
	go test -run xxx -bench . -benchtime 10x .

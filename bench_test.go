package tianhe_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks of the real compute kernels.
// The figure benchmarks report the simulation's virtual performance numbers
// as custom metrics (vGFLOPS / vTFLOPS) alongside the usual wall-clock cost
// of regenerating them.

import (
	"testing"

	"tianhe"
	"tianhe/internal/adaptive"
	"tianhe/internal/blas"
	"tianhe/internal/element"
	"tianhe/internal/experiments"
	"tianhe/internal/hpl"
	"tianhe/internal/matrix"
	"tianhe/internal/pipeline"
	"tianhe/internal/sim"
)

// BenchmarkFig8DGEMM regenerates Figure 8: hybrid DGEMM performance by
// matrix size for the five configurations. The reported vGFLOPS metric is
// the virtual rate at N = 12288.
func BenchmarkFig8DGEMM(b *testing.B) {
	for _, v := range tianhe.Variants {
		b.Run(v.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := tianhe.ElementConfig{Seed: experiments.DefaultSeed, Virtual: true}
				if v == tianhe.CPUOnly {
					cfg.CPUCores = 4
				}
				el := tianhe.NewElement(cfg)
				run := tianhe.NewRunnerWithCapacity(el, v, 2.0*12288*12288*12288)
				for j := 0; j < 3; j++ {
					last = run.GemmVirtual(12288, 12288, 12288, 1, el.Now()).GFLOPS()
				}
			}
			b.ReportMetric(last, "vGFLOPS")
		})
	}
}

// BenchmarkFig9Linpack regenerates Figure 9: single-element Linpack at the
// paper's headline size N = 46080 for each configuration.
func BenchmarkFig9Linpack(b *testing.B) {
	for _, v := range tianhe.Variants {
		b.Run(v.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res := tianhe.SimulateLinpack(tianhe.SimulateConfig{
					N: 46080, Variant: v, Seed: experiments.DefaultSeed,
					PageableLibrary: v == tianhe.ACMLG,
				})
				last = res.GFLOPS
			}
			b.ReportMetric(last, "vGFLOPS")
		})
	}
}

// BenchmarkFig10SplitAdaptation regenerates Figure 10: the database_g
// snapshot after an adaptive Linpack run. The metric is the number of
// workload buckets the run adapted.
func BenchmarkFig10SplitAdaptation(b *testing.B) {
	var touched int
	for i := 0; i < b.N; i++ {
		entries, _ := experiments.Fig10(experiments.DefaultSeed, 46080)
		touched = 0
		for _, e := range entries {
			if e.Touched {
				touched++
			}
		}
	}
	b.ReportMetric(float64(touched), "buckets")
}

// BenchmarkFig11CabinetPolicies regenerates Figure 11: adaptive versus
// Qilin-trained mapping at 64 processes in one cabinet. The metric is each
// policy's virtual GFLOPS.
func BenchmarkFig11CabinetPolicies(b *testing.B) {
	for _, pol := range []string{"adaptive", "qilin-trained"} {
		b.Run(pol, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				ours, qilin := experiments.Fig11(experiments.DefaultSeed, []int{64}, 1)
				if pol == "adaptive" {
					last, _ = ours.Y(64)
				} else {
					last, _ = qilin.Y(64)
				}
			}
			b.ReportMetric(last, "vGFLOPS")
		})
	}
}

// BenchmarkFig12CabinetScaling regenerates Figure 12's endpoints: one
// cabinet and the full 80-cabinet machine, reporting virtual TFLOPS.
func BenchmarkFig12CabinetScaling(b *testing.B) {
	for _, cab := range []int{1, 80} {
		name := "1-cabinet"
		if cab == 80 {
			name = "80-cabinets"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s := experiments.Fig12(experiments.DefaultSeed, []int{cab}, 1)
				last, _ = s.Y(float64(cab))
			}
			b.ReportMetric(last, "vTFLOPS")
		})
	}
}

// BenchmarkFig13FullMachineProgress regenerates Figure 13: the cumulative
// performance curve of the full-machine run. The metric is the final
// cumulative vTFLOPS (the paper's 563.1).
func BenchmarkFig13FullMachineProgress(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig13(experiments.DefaultSeed, 1)
		last = pts[len(pts)-1].CumTFLOPS
	}
	b.ReportMetric(last, "vTFLOPS")
}

// BenchmarkTableISchedule regenerates Table I: the CT/NT pipeline schedule
// for the four bounce-ordered tasks.
func BenchmarkTableISchedule(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.TableI()
	}
	if len(out) == 0 {
		b.Fatal("empty schedule")
	}
}

// --- Micro-benchmarks of the real kernels underneath the figures ---

func benchmarkDgemmSize(b *testing.B, n, workers int) {
	r := sim.NewRNG(1)
	a := matrix.NewDense(n, n)
	bb := matrix.NewDense(n, n)
	c := matrix.NewDense(n, n)
	a.FillRandom(r)
	bb.FillRandom(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.DgemmParallel(blas.NoTrans, blas.NoTrans, 1, a, bb, 0, c, workers)
	}
	flops := blas.GemmFlops(n, n, n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkDgemm256 measures the pure-Go serial DGEMM kernel.
func BenchmarkDgemm256(b *testing.B) { benchmarkDgemmSize(b, 256, 1) }

// BenchmarkDgemm512Parallel measures the parallel DGEMM path.
func BenchmarkDgemm512Parallel(b *testing.B) { benchmarkDgemmSize(b, 512, 4) }

// BenchmarkDgetrf measures the real blocked LU factorization.
func BenchmarkDgetrf(b *testing.B) {
	const n = 384
	src := matrix.NewDense(n, n)
	src.FillRandom(sim.NewRNG(2))
	ipiv := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := src.Clone()
		b.StartTimer()
		if err := hpl.Dgetrf(a, ipiv, hpl.Options{NB: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveLookupUpdate measures the Section IV bookkeeping the
// paper calls negligible: one database lookup plus one feedback update.
func BenchmarkAdaptiveLookupUpdate(b *testing.B) {
	a := adaptive.NewAdaptive(64, 1e13, 0.889, 3)
	obs := adaptive.Observation{
		Work: 1e10, GSplit: 0.889, TG: 0.05, TC: 0.05,
		CoreWorks: []float64{1, 1, 1}, CoreTimes: []float64{1, 1, 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.GSplit(obs.Work)
		a.Observe(obs)
	}
}

// BenchmarkPipelinePlanning measures task-queue construction for a
// full-size Linpack update.
func BenchmarkPipelinePlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pipeline.NewPlan(40000, 40000, 1216, 5376, true)
		if len(p.Tasks) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkHybridGemmReal measures a real (computing) hybrid DGEMM on a
// scaled-down element.
func BenchmarkHybridGemmReal(b *testing.B) {
	el := element.New(element.Config{Seed: 3, JitterSigma: -1, GPUMem: 8 << 20, GPUTexture: 256})
	run := tianhe.NewRunner(el, tianhe.ACMLGBoth)
	r := sim.NewRNG(4)
	n := 320
	a := matrix.NewDense(n, n)
	bb := matrix.NewDense(n, n)
	c := matrix.NewDense(n, n)
	a.FillRandom(r)
	bb.FillRandom(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Gemm(1, a, bb, 0, c, el.Now())
	}
}

// BenchmarkDgemmPacked measures the GotoBLAS-style packed micro-kernel
// against the axpy kernel of the same size (see BenchmarkDgemm256).
func BenchmarkDgemmPacked256(b *testing.B) {
	r := sim.NewRNG(5)
	n := 256
	a := matrix.NewDense(n, n)
	bb := matrix.NewDense(n, n)
	c := matrix.NewDense(n, n)
	a.FillRandom(r)
	bb.FillRandom(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.DgemmPacked(1, a, bb, 0, c)
	}
	flops := blas.GemmFlops(n, n, n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

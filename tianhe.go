// Package tianhe is the public facade of this reproduction of "Adaptive
// Optimization for Petascale Heterogeneous CPU/GPU Computing" (Yang et al.,
// IEEE CLUSTER 2010): the Linpack implementation for the TianHe-1 CPU+GPU
// supercomputer, built around two techniques — two-level adaptive task
// mapping between the GPU and the CPU cores of each compute element, and
// software pipelining that overlaps CPU-GPU transfers with kernel execution.
//
// The hardware is simulated (see DESIGN.md for the substitution table): a
// compute element pairs a quad-core Xeon model with an RV770 GPU model whose
// kernels really compute (pure-Go BLAS) while their durations are booked in
// deterministic virtual time. Small problems run end-to-end for real —
// factorizations are residual-checked — and the paper's full-machine
// configurations are reproduced by a performance simulation with the
// identical control structure.
//
// Typical use:
//
//	el := tianhe.NewElement(tianhe.ElementConfig{Seed: 1})
//	run := tianhe.NewRunner(el, tianhe.ACMLGBoth)
//	rep := run.Gemm(1, a, b, 1, c, 0) // real arithmetic, virtual timing
//
// The cmd directory regenerates every table and figure of the paper's
// evaluation; EXPERIMENTS.md records paper-versus-measured values.
package tianhe

import (
	"tianhe/internal/adaptive"
	"tianhe/internal/cluster"
	"tianhe/internal/element"
	"tianhe/internal/hpl"
	"tianhe/internal/hybrid"
	"tianhe/internal/linpacksim"
	"tianhe/internal/matrix"
)

// Variant names one of the five configurations the paper evaluates.
type Variant = element.Variant

// The five evaluated configurations (Section VI.B).
const (
	// CPUOnly runs the host math library on all four cores.
	CPUOnly = element.CPUOnly
	// ACMLG offloads whole DGEMMs to the GPU the way the vendor library
	// does: strict input -> execute -> output, no CPU participation.
	ACMLG = element.ACMLG
	// ACMLGAdaptive adds the two-level adaptive CPU/GPU split (Section IV).
	ACMLGAdaptive = element.ACMLGAdaptive
	// ACMLGPipe adds the software pipeline (Section V).
	ACMLGPipe = element.ACMLGPipe
	// ACMLGBoth applies both techniques — the paper's configuration.
	ACMLGBoth = element.ACMLGBoth
)

// Variants lists the configurations in the paper's order.
var Variants = element.Variants

// ElementConfig configures one compute element; see element.Config.
type ElementConfig = element.Config

// Element is one CPU+GPU compute unit of the machine.
type Element = element.Element

// NewElement assembles a compute element.
func NewElement(cfg ElementConfig) *Element { return element.New(cfg) }

// Runner executes hybrid DGEMMs on an element under one configuration.
type Runner = hybrid.Runner

// GemmReport describes one hybrid DGEMM execution.
type GemmReport = hybrid.Report

// NewRunner builds a runner for the given variant. Adaptive variants
// receive a fresh two-level partitioner sized for workloads up to
// maxWorkFlops; pass 0 for a general-purpose default.
func NewRunner(el *Element, v Variant) *Runner {
	return NewRunnerWithCapacity(el, v, 0)
}

// NewRunnerWithCapacity is NewRunner with an explicit database_g workload
// range in flops (the bucket span of Section IV.B).
func NewRunnerWithCapacity(el *Element, v Variant, maxWorkFlops float64) *Runner {
	var part adaptive.Partitioner
	if v.Adaptive() {
		if maxWorkFlops <= 0 {
			maxWorkFlops = 1e14
		}
		part = adaptive.NewAdaptive(64, maxWorkFlops, el.InitialGSplit(), el.CPU.NumCores())
	}
	return hybrid.New(el, v, part)
}

// Matrix is the column-major dense matrix type of the library.
type Matrix = matrix.Dense

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.NewDense(rows, cols) }

// LinpackOptions configures a real (residual-checked) Linpack run.
type LinpackOptions = hpl.Options

// LinpackResult reports a real Linpack run.
type LinpackResult = hpl.Result

// RunLinpack executes the full benchmark workflow at order n — generate,
// factor, solve, verify — computing everything for real. Sizes beyond a few
// thousand take real CPU time; the paper-scale figures use SimulateLinpack.
func RunLinpack(n int, seed uint64, opts LinpackOptions) (LinpackResult, error) {
	return hpl.Run(n, seed, opts)
}

// RefineSolution improves a computed Linpack solution in place by classical
// iterative refinement using the existing LU factors, returning the steps
// taken and the final residual infinity-norm.
func RefineSolution(a, lu *Matrix, ipiv []int, b, x []float64, maxIter int) (int, float64) {
	return hpl.IterativeRefine(a, lu, ipiv, b, x, maxIter)
}

// EstimateRcond estimates the reciprocal condition number from LU factors
// with Hager's one-norm estimator.
func EstimateRcond(lu *Matrix, ipiv []int, anorm float64) float64 {
	return hpl.EstimateRcond(lu, ipiv, anorm)
}

// SimulateConfig configures a single-element Linpack timing simulation.
type SimulateConfig = linpacksim.Config

// SimulateResult reports a simulated run.
type SimulateResult = linpacksim.Result

// SimulateLinpack reproduces the timing of one Linpack run on a single
// compute element at any problem size (Fig. 9's N = 46000 included) without
// performing the arithmetic.
func SimulateLinpack(cfg SimulateConfig) SimulateResult { return linpacksim.Run(cfg) }

// DistributedConfig configures a real distributed solve over the in-process
// MPI substrate.
type DistributedConfig = cluster.DistConfig

// DistributedResult reports a distributed solve.
type DistributedResult = cluster.DistResult

// SolveDistributed factors and solves a system across several compute
// elements for real, verifying the residual.
func SolveDistributed(cfg DistributedConfig) (DistributedResult, error) {
	return cluster.SolveDistributed(cfg)
}

// Distributed2DConfig configures a real solve on a P x Q block-cyclic grid
// (HPL's own layout), with optional depth-1 look-ahead.
type Distributed2DConfig = cluster.Dist2DConfig

// SolveDistributed2D factors and solves on the 2D grid with collaborative
// distributed pivoting, real arithmetic and virtual timing.
func SolveDistributed2D(cfg Distributed2DConfig) (DistributedResult, error) {
	return cluster.SolveDistributed2D(cfg)
}

// Policy selects split management in the cluster-scale simulation.
type Policy = cluster.Policy

// The two policies Figure 11 compares.
const (
	// PolicyAdaptive refreshes splits every iteration from measured rates.
	PolicyAdaptive = cluster.PolicyAdaptive
	// PolicyTrained freezes splits measured in an offline training phase.
	PolicyTrained = cluster.PolicyTrained
)

// ScaleConfig configures a cluster-scale performance simulation.
type ScaleConfig = cluster.ScaleConfig

// ScaleResult reports a cluster-scale simulation.
type ScaleResult = cluster.ScaleResult

// SimulateScale reproduces the paper's multi-cabinet runs (up to 5120
// elements, N = 2,240,000) with the per-iteration HPL control structure.
func SimulateScale(cfg ScaleConfig) ScaleResult { return cluster.SimulateScale(cfg) }

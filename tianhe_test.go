package tianhe_test

import (
	"testing"

	"tianhe"
	"tianhe/internal/blas"
	"tianhe/internal/hpl"
	"tianhe/internal/matrix"
	"tianhe/internal/sim"
)

// factorInto and solveWith adapt the internal hpl helpers for the facade
// refinement test.
func factorInto(lu *tianhe.Matrix, ipiv []int) error {
	return hpl.Dgetrf(lu, ipiv, hpl.Options{NB: 32})
}

func solveWith(lu *tianhe.Matrix, ipiv []int, x []float64) { hpl.SolveFactored(lu, ipiv, x) }

func TestFacadeQuickstart(t *testing.T) {
	// The README's quickstart flow must work exactly as documented.
	el := tianhe.NewElement(tianhe.ElementConfig{Seed: 1, JitterSigma: -1})
	run := tianhe.NewRunner(el, tianhe.ACMLGBoth)
	n := 256
	r := sim.NewRNG(1)
	a := tianhe.NewMatrix(n, n)
	b := tianhe.NewMatrix(n, n)
	c := tianhe.NewMatrix(n, n)
	a.FillRandom(r)
	b.FillRandom(r)
	rep := run.Gemm(1, a, b, 0, c, 0)
	if rep.GFLOPS() <= 0 {
		t.Fatal("no virtual rate reported")
	}
	want := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, want)
	if d := c.MaxDiff(want); d > 1e-11 {
		t.Fatalf("facade DGEMM wrong by %v", d)
	}
}

func TestFacadeLinpackReal(t *testing.T) {
	res, err := tianhe.RunLinpack(128, 7, tianhe.LinpackOptions{NB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("residual %v", res.Residual)
	}
}

func TestFacadeLinpackSimulated(t *testing.T) {
	res := tianhe.SimulateLinpack(tianhe.SimulateConfig{
		N: 24320, Variant: tianhe.ACMLGBoth, Seed: 1,
	})
	if res.GFLOPS < 100 || res.GFLOPS > 280 {
		t.Fatalf("simulated Linpack %v GFLOPS implausible", res.GFLOPS)
	}
}

func TestFacadeDistributed(t *testing.T) {
	res, err := tianhe.SolveDistributed(tianhe.DistributedConfig{
		N: 128, NB: 32, Ranks: 2, Seed: 2, Variant: tianhe.ACMLGBoth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("residual %v", res.Residual)
	}
}

func TestFacadeScaleSimulation(t *testing.T) {
	r := tianhe.SimulateScale(tianhe.ScaleConfig{
		N: 60800, NB: 1216, Processes: 4, Seed: 3,
	})
	if r.GFLOPS <= 0 || r.Iterations != 50 {
		t.Fatalf("scale sim result: %+v", r)
	}
}

func TestFacadeVariantSet(t *testing.T) {
	if len(tianhe.Variants) != 5 {
		t.Fatal("five configurations expected")
	}
	if tianhe.ACMLGBoth.String() != "ACMLG+both" {
		t.Fatal("variant naming changed")
	}
}

func TestFacadeDistributed2D(t *testing.T) {
	res, err := tianhe.SolveDistributed2D(tianhe.Distributed2DConfig{
		N: 128, NB: 32, P: 2, Q: 2, Seed: 4, Variant: tianhe.ACMLGBoth, Lookahead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("residual %v", res.Residual)
	}
}

func TestFacadeRefinementAndRcond(t *testing.T) {
	n := 96
	a := tianhe.NewMatrix(n, n)
	a.FillRandom(sim.NewRNG(6))
	lu := a.Clone()
	ipiv := make([]int, n)
	res, err := tianhe.RunLinpack(n, 6, tianhe.LinpackOptions{NB: 32})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Exercise the exported refinement path end to end.
	b := make([]float64, n)
	matrix.FillRandomVector(b, sim.NewRNG(7))
	x := append([]float64(nil), b...)
	if err := factorInto(lu, ipiv); err != nil {
		t.Fatal(err)
	}
	solveWith(lu, ipiv, x)
	steps, norm := tianhe.RefineSolution(a, lu, ipiv, b, x, 4)
	if steps < 0 || norm < 0 {
		t.Fatal("refinement returned nonsense")
	}
	if rc := tianhe.EstimateRcond(lu, ipiv, a.NormOne()); rc <= 0 || rc > 1 {
		t.Fatalf("rcond %v out of range", rc)
	}
}

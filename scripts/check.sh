#!/bin/sh
# check.sh — the full local verification suite: build everything, vet
# everything, run the tianhelint invariant analyzers, and run every test —
# under the race detector when the toolchain supports it. CI and
# `make check` both run exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# -tests also lints _test.go files with the clock/rand contract; -par runs
# the per-package passes concurrently (findings identical at any setting).
go run ./cmd/tianhelint -tests -par 8

# The race detector needs cgo; fall back to plain tests on toolchains
# without it (CGO_ENABLED=0 or no C compiler) so check works everywhere.
# The -race run doubles as the gate for the parallel sweep runner: the
# TestParDeterminism goldens in internal/experiments compare -par 1
# against -par 8 byte for byte under the detector — including the serving
# sweep (TestParDeterminismServeSweep), whose per-tenant metric dumps and
# verdict tables must match across parallelism.
if [ "$(go env CGO_ENABLED)" = "1" ]; then
    go test -race ./...
else
    echo "check.sh: CGO_ENABLED=$(go env CGO_ENABLED) — race detector unavailable, running tests without -race" >&2
    go test ./...
fi

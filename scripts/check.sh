#!/bin/sh
# check.sh — the full local verification suite: build everything, vet
# everything, and run every test under the race detector. CI and `make check`
# both run exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

#!/bin/sh
# parbench.sh — measure the parallel sweep runner: run faultbench and
# scalebench at -par 1 (the legacy serial loop) and -par $PAR (default 8),
# verify the outputs are byte-identical, and report wall-clock speedups.
#
# The speedup numbers are honest wall-clock measurements on THIS host; the
# determinism check is meaningful on any machine, but a speedup near PAR
# needs at least PAR real cores. The script prints the host's core count
# next to the results so numbers are never quoted out of context.
set -eu

cd "$(dirname "$0")/.."

PAR="${PAR:-8}"
CORES="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)"

bindir="$(mktemp -d)"
outdir="$(mktemp -d)"
trap 'rm -rf "$bindir" "$outdir"' EXIT INT TERM

go build -o "$bindir" ./cmd/faultbench ./cmd/scalebench

# now_s prints wall-clock seconds with nanosecond resolution.
now_s() { date +%s.%N; }

echo "parbench: host has $CORES cores; comparing -par 1 vs -par $PAR"
echo
printf '%-12s %12s %12s %10s  %s\n' "tool" "par1 (s)" "par$PAR (s)" "speedup" "output"

run_tool() {
    name="$1"
    shift
    t0="$(now_s)"
    "$bindir/$name" -par 1 "$@" >"$outdir/$name.par1"
    t1="$(now_s)"
    "$bindir/$name" -par "$PAR" "$@" >"$outdir/$name.parN"
    t2="$(now_s)"
    if ! cmp -s "$outdir/$name.par1" "$outdir/$name.parN"; then
        printf '%-12s output DIFFERS between -par 1 and -par %s\n' "$name" "$PAR"
        diff "$outdir/$name.par1" "$outdir/$name.parN" | head -20 || true
        exit 1
    fi
    awk -v t0="$t0" -v t1="$t1" -v t2="$t2" -v name="$name" 'BEGIN {
        s = t1 - t0; p = t2 - t1
        spd = (p > 0) ? s / p : 0
        printf "%-12s %12.3f %12.3f %9.2fx  byte-identical\n", name, s, p, spd
    }'
}

run_tool faultbench
run_tool scalebench

echo
if [ "$CORES" != "unknown" ] && [ "$CORES" -lt "$PAR" ] 2>/dev/null; then
    echo "parbench: note: only $CORES cores — speedup is bounded by the host, not by the sweep runner"
fi

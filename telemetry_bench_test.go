package tianhe_test

// BenchmarkTelemetryOverhead measures what the telemetry subsystem costs on
// the Figure 8 hybrid-DGEMM path. The three sub-benchmarks run the identical
// simulated workload: Baseline never touches telemetry (the uninstrumented
// seed path), Disabled routes through the instrumentation seams with the nil
// bundle (what every production caller pays when -trace/-metrics are off),
// and Enabled records everything. Disabled must stay within noise (<5%) of
// Baseline — the nil-bundle hot path is one pointer check.

import (
	"testing"

	"tianhe"
	"tianhe/internal/adaptive"
	"tianhe/internal/element"
	"tianhe/internal/experiments"
	"tianhe/internal/hybrid"
	"tianhe/internal/telemetry"
)

// fig8Workload runs the Figure 8 inner loop — three hybrid DGEMMs at
// N = 12288 on a fresh ACMLG+both element — with the given bundle. A nil
// bundle exercises the disabled path; telemetry.New() the enabled one.
func fig8Workload(tel *telemetry.Telemetry) float64 {
	el := element.New(element.Config{Seed: experiments.DefaultSeed, Virtual: true})
	work := 2.0 * 12288 * 12288 * 12288
	var part adaptive.Partitioner = adaptive.NewAdaptive(64, work, el.InitialGSplit(), el.CPU.NumCores())
	part = adaptive.Instrument(part, tel)
	run := hybrid.New(el, element.ACMLGBoth, part)
	if tel.Enabled() {
		run.Instrument(tel)
		el.Instrument(tel, "bench")
	}
	var g float64
	for j := 0; j < 3; j++ {
		g = run.GemmVirtual(12288, 12288, 12288, 1, el.Now()).GFLOPS()
	}
	return g
}

func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) {
		// The seed path: no instrumentation seams at all.
		var last float64
		for i := 0; i < b.N; i++ {
			el := tianhe.NewElement(tianhe.ElementConfig{Seed: experiments.DefaultSeed, Virtual: true})
			run := tianhe.NewRunnerWithCapacity(el, tianhe.ACMLGBoth, 2.0*12288*12288*12288)
			for j := 0; j < 3; j++ {
				last = run.GemmVirtual(12288, 12288, 12288, 1, el.Now()).GFLOPS()
			}
		}
		b.ReportMetric(last, "vGFLOPS")
	})
	b.Run("Disabled", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			last = fig8Workload(telemetry.Disabled())
		}
		b.ReportMetric(last, "vGFLOPS")
	})
	b.Run("Enabled", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			last = fig8Workload(telemetry.New())
		}
		b.ReportMetric(last, "vGFLOPS")
	})
}

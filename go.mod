module tianhe

go 1.22

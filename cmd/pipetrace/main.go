// Command pipetrace regenerates Table I of the paper: the CT/NT
// state-machine schedule of the software pipeline for a task queue, and
// optionally a virtual-time resource trace of an actual pipelined DGEMM.
package main

import (
	"flag"
	"fmt"

	"tianhe/internal/gpu"
	"tianhe/internal/perfmodel"
	"tianhe/internal/pipeline"
	"tianhe/internal/trace"
)

func main() {
	m := flag.Int("m", 16384, "DGEMM rows")
	n := flag.Int("n", 16384, "DGEMM columns")
	k := flag.Int("k", 8192, "DGEMM inner dimension")
	tile := flag.Int("tile", 0, "task tile extent (0 derives the largest tile that fits device memory)")
	showTrace := flag.Bool("trace", false, "also print the virtual-time resource trace")
	flag.Parse()

	if *tile <= 0 {
		*tile = pipeline.ChooseTile(perfmodel.TextureLimit, perfmodel.GPULocalMemBytes, 512)
	}
	plan := pipeline.NewPlan(*m, *n, *k, *tile, true)
	names := pipeline.BounceOrderNames(plan)
	fmt.Printf("Task queue for %dx%dx%d with %d tiles (bounce corner turn): %v\n\n",
		*m, *n, *k, *tile, names)
	fmt.Println("Table I — the pipeline shifted in time:")
	fmt.Println()
	fmt.Print(pipeline.FormatSchedule(pipeline.Schedule(names)))

	if !*showTrace {
		return
	}
	fmt.Println()
	fmt.Println("Virtual-time resource schedule, baseline (no pipelining):")
	base := gpu.New(gpu.Config{Virtual: true})
	pipeline.NewExecutor(base, pipeline.Options{Tile: *tile, BlockRows: 2048}).
		ExecuteVirtual(*m, *n, *k, 1, 0)
	fmt.Print(trace.Gantt{Width: 88}.Render(base.DMA, base.Queue))
	fmt.Print(trace.Utilization(base.DMA, base.Queue))

	fmt.Println()
	fmt.Println("Virtual-time resource schedule, full Section V pipeline:")
	dev := gpu.New(gpu.Config{Virtual: true})
	exec := pipeline.NewExecutor(dev, pipeline.Options{
		Reuse: true, OverlapInput: true, BlockedEO: true, Tile: *tile, BlockRows: 2048,
	})
	rep := exec.ExecuteVirtual(*m, *n, *k, 1, 0)
	fmt.Print(trace.Gantt{Width: 88}.Render(dev.DMA, dev.Queue))
	fmt.Print(trace.Utilization(dev.DMA, dev.Queue))
	fmt.Printf("\nend-to-end: %.3f s, %.1f GFLOPS (virtual), %.2f GB in, %.2f GB out, %.2f GB reused\n",
		rep.Seconds(), rep.GFLOPS(),
		float64(rep.BytesIn)/1e9, float64(rep.BytesOut)/1e9, float64(rep.BytesSkipped)/1e9)
}

// Command pipetrace regenerates Table I of the paper: the CT/NT
// state-machine schedule of the software pipeline for a task queue, and
// optionally a virtual-time resource trace of an actual pipelined DGEMM —
// as an ASCII Gantt chart (-gantt) and/or a Chrome trace-event JSON file
// (-trace out.json, loadable in Perfetto) with the telemetry metric dump
// (-metrics).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tianhe/internal/gpu"
	"tianhe/internal/perfmodel"
	"tianhe/internal/pipeline"
	"tianhe/internal/sweep"
	"tianhe/internal/telemetry"
	"tianhe/internal/trace"
)

func main() {
	m := flag.Int("m", 16384, "DGEMM rows")
	n := flag.Int("n", 16384, "DGEMM columns")
	k := flag.Int("k", 8192, "DGEMM inner dimension")
	tile := flag.Int("tile", 0, "task tile extent (0 derives the largest tile that fits device memory)")
	gantt := flag.Bool("gantt", false, "also print the virtual-time ASCII resource trace")
	tracePath := flag.String("trace", "", "write the Table I CT/NT schedule and the resource trace as Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metric dump after the run")
	par := flag.Int("par", 0, "worker count for the baseline/pipelined pair (<=0: GOMAXPROCS); output is identical for every value")
	flag.Parse()

	var tel *telemetry.Telemetry
	if *tracePath != "" || *metrics {
		tel = telemetry.New()
	}

	if *tile <= 0 {
		*tile = pipeline.ChooseTile(perfmodel.TextureLimit, perfmodel.GPULocalMemBytes, 512)
	}
	plan := pipeline.NewPlan(*m, *n, *k, *tile, true)
	names := pipeline.BounceOrderNames(plan)
	fmt.Printf("Task queue for %dx%dx%d with %d tiles (bounce corner turn): %v\n\n",
		*m, *n, *k, *tile, names)
	fmt.Println("Table I — the pipeline shifted in time:")
	fmt.Println()
	rows := pipeline.Schedule(names)
	fmt.Print(pipeline.FormatSchedule(rows))
	pipeline.TraceSchedule(tel.Tracer(), rows)

	if *gantt || tel.Enabled() {
		runTraces(*m, *n, *k, *tile, *gantt, tel, sweep.Workers(*par))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipetrace: %v\n", err)
			os.Exit(1)
		}
		if err := tel.Trace.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipetrace: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", tel.Trace.Len(), *tracePath)
	}
	if *metrics {
		fmt.Println()
		tel.Metrics.WriteText(os.Stdout)
	}
}

// runTraces executes the baseline and the full Section V pipeline on virtual
// devices, streaming bookings into the telemetry tracer and printing the
// ASCII charts when asked. The two executions are independent simulated
// devices; they run on par workers, and the charts print afterwards in the
// baseline-then-pipelined order of the serial tool.
func runTraces(m, n, k, tile int, gantt bool, tel *telemetry.Telemetry, par int) {
	type side struct {
		dev *gpu.Device
		rep pipeline.Report
	}
	sides := sweep.MapTel(context.Background(), par, tel, []bool{false, true},
		func(_ int, pipelined bool, tel *telemetry.Telemetry) side {
			dev := gpu.New(gpu.Config{Virtual: true})
			if !pipelined {
				telemetry.AttachTimelines(tel, "resource", "baseline/", dev.DMA, dev.Queue)
				rep := pipeline.NewExecutor(dev, pipeline.Options{Tile: tile, BlockRows: 2048}).
					ExecuteVirtual(m, n, k, 1, 0)
				return side{dev: dev, rep: rep}
			}
			telemetry.AttachTimelines(tel, "resource", "pipelined/", dev.DMA, dev.Queue)
			exec := pipeline.NewExecutor(dev, pipeline.Options{
				Reuse: true, OverlapInput: true, BlockedEO: true, Tile: tile, BlockRows: 2048,
				Telemetry: tel,
			})
			return side{dev: dev, rep: exec.ExecuteVirtual(m, n, k, 1, 0)}
		})
	if !gantt {
		return
	}
	base, piped := sides[0], sides[1]
	fmt.Println()
	fmt.Println("Virtual-time resource schedule, baseline (no pipelining):")
	fmt.Print(trace.Gantt{Width: 88}.Render(base.dev.DMA, base.dev.Queue))
	fmt.Print(trace.Utilization(base.dev.DMA, base.dev.Queue))

	fmt.Println()
	fmt.Println("Virtual-time resource schedule, full Section V pipeline:")
	fmt.Print(trace.Gantt{Width: 88}.Render(piped.dev.DMA, piped.dev.Queue))
	fmt.Print(trace.Utilization(piped.dev.DMA, piped.dev.Queue))
	rep := piped.rep
	fmt.Printf("\nend-to-end: %.3f s, %.1f GFLOPS (virtual), %.2f GB in, %.2f GB out, %.2f GB reused\n",
		rep.Seconds(), rep.GFLOPS(),
		float64(rep.BytesIn)/1e9, float64(rep.BytesOut)/1e9, float64(rep.BytesSkipped)/1e9)
}

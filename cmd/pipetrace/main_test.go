package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"tianhe/internal/telemetry"
)

// TestTraceExportRoundTrips builds the command, runs it with -trace on the
// 2x2 task split of Fig. 5, and decodes the JSON back: the file must parse as
// a Chrome trace-event export and contain the CT/NT state spans of Table I
// for the bounce-ordered tasks T0, T1, T3, T2.
func TestTraceExportRoundTrips(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "pipetrace")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pipetrace: %v\n%s", err, out)
	}
	tracePath := filepath.Join(dir, "tablei.json")
	cmd := exec.Command(bin,
		"-m", "8192", "-n", "8192", "-k", "4096", "-tile", "4096",
		"-trace", tracePath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("running pipetrace: %v\n%s", err, out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("pipetrace wrote no trace file: %v", err)
	}
	defer f.Close()
	events, err := telemetry.ParseTrace(f)
	if err != nil {
		t.Fatalf("-trace output does not decode as Chrome trace-event JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("-trace output decoded to zero events")
	}

	ctTasks := make(map[string]bool)
	ntTasks := make(map[string]bool)
	for _, e := range events {
		if e.Phase != telemetry.PhaseSpan {
			continue
		}
		switch e.Track {
		case "CT":
			ctTasks[e.Name] = true
		case "NT":
			ntTasks[e.Name] = true
		}
	}
	for _, task := range []string{"T0", "T1", "T3", "T2"} {
		if !ctTasks[task] {
			t.Errorf("no CT state span for task %s in -trace output", task)
		}
	}
	for _, task := range []string{"T1", "T3", "T2"} {
		if !ntTasks[task] {
			t.Errorf("no NT state span for task %s in -trace output", task)
		}
	}
	// The resource trace of the pipelined execution rides along: both virtual
	// devices contribute span tracks.
	sawResource := false
	for _, e := range events {
		if e.Phase == telemetry.PhaseSpan && e.Track != "CT" && e.Track != "NT" {
			sawResource = true
			break
		}
	}
	if !sawResource {
		t.Error("-trace output has no resource spans beyond the CT/NT schedule")
	}
}

package main

import (
	"os"
	"testing"

	"tianhe/internal/analyzers"
)

// TestShippedTreeIsClean is the acceptance gate: the full analyzer suite
// must report zero findings over the module as committed. Any new
// time.Now call, global math/rand use, unguarded nil-bundle field read,
// float ==, ordered map-iteration sink, or by-value lock copy in non-test
// code fails this test (and therefore `go test ./...` and `make check`).
func TestShippedTreeIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analyzers.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing parts of the tree", len(pkgs))
	}
	findings := analyzers.Run(loader.Fset(), pkgs, analyzers.All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

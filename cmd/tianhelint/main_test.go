package main

import (
	"bytes"
	"os"
	"testing"
	"time"

	"tianhe/internal/analyzers"
)

// TestShippedTreeIsClean is the acceptance gate: the full analyzer suite —
// including the interprocedural detpure/lockorder/goroleak checks and, via
// IncludeTests, the clock/rand contract inside _test.go files — must
// report zero findings over the module as committed. Any new time.Now
// call, global math/rand use, contract-package impurity, lock-order
// cycle, or leaked goroutine in the tree fails this test (and therefore
// `go test ./...` and `make check`).
func TestShippedTreeIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analyzers.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing parts of the tree", len(pkgs))
	}
	mod := analyzers.BuildModule(loader.Fset(), pkgs, &analyzers.ModuleOptions{IncludeTests: true})
	findings := analyzers.RunModule(mod, analyzers.All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// runLint drives the CLI entry point with captured output.
func runLint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(&out, &errOut, args)
	if code == 2 {
		t.Fatalf("lint load error: %s", errOut.String())
	}
	return out.String(), code
}

// TestParFindingsIdentical pins the -par contract: the whole-module run at
// -par 1 and -par 8 must produce byte-identical output and the same exit
// code (the passes fan out over read-only module state, so this also runs
// the suite's concurrency under -race in CI). The serial run doubles as
// the latency guard: whole-module analysis must stay under 30 seconds or
// `make lint` stops being something people run before committing.
func TestParFindingsIdentical(t *testing.T) {
	start := time.Now() //lint:ignore nowalltime guarding the wall-clock latency of the lint run itself
	serial, codeSerial := runLint(t, "-tests", "-par", "1")
	elapsed := time.Since(start) //lint:ignore nowalltime guarding the wall-clock latency of the lint run itself
	parallel, codeParallel := runLint(t, "-tests", "-par", "8")
	if serial != parallel {
		t.Errorf("-par 1 and -par 8 output differ:\n--- par 1 ---\n%s\n--- par 8 ---\n%s", serial, parallel)
	}
	if codeSerial != codeParallel {
		t.Errorf("-par 1 exit %d, -par 8 exit %d", codeSerial, codeParallel)
	}
	if elapsed > 30*time.Second {
		t.Errorf("whole-module analysis took %v; the 30s budget keeps make lint usable pre-commit", elapsed)
	}
}

// BenchmarkLintModule tracks the cost of one whole-module analysis run
// (load, type-check, call graph, facts fixpoint, all checks).
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out, errOut bytes.Buffer
		if code := run(&out, &errOut, []string{"-par", "8"}); code == 2 {
			b.Fatalf("lint load error: %s", errOut.String())
		}
	}
}

// Command tianhelint runs the repository's custom static analyzer suite
// (internal/analyzers) over every non-test package in the module and
// reports violations of the simulator's determinism, telemetry, and
// numerics invariants with file:line:col positions. It exits 1 when any
// finding survives lint:ignore suppression, 2 on load errors, 0 on a
// clean tree — `make lint` and scripts/check.sh gate on exactly this.
//
// Usage:
//
//	tianhelint [-json] [-why] [-par N] [-tests] [-checks nowalltime,floateq,...] [-list]
//
// The interprocedural checks (detpure, lockorder, goroleak) justify their
// findings with a call path; -why prints it under each finding (JSON output
// always carries it). -par runs the per-package passes concurrently over
// the shared read-only module state; findings are byte-identical at any
// setting. -tests additionally loads in-package _test.go files and applies
// the checks that opt in (the clock and randomness contracts) to them.
//
// Findings can be suppressed per site with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tianhe/internal/analyzers"
	"tianhe/internal/sweep"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

type jsonFinding struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Check   string   `json:"check"`
	Message string   `json:"message"`
	Why     []string `json:"why,omitempty"`
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("tianhelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	why := fs.Bool("why", false, "print the justifying call path under each interprocedural finding")
	par := fs.Int("par", 1, "package-level analysis parallelism (findings are identical at any setting)")
	tests := fs.Bool("tests", false, "also lint in-package _test.go files with the checks that opt in (clock and randomness)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	checks := analyzers.All()
	if *checksFlag != "" {
		checks = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			a := analyzers.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "tianhelint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}
	root, err := analyzers.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}

	// The module (call graph, facts, contracts, lock cycles) is built once
	// and read-only afterwards; the per-package passes then fan out over the
	// deterministic sweep runner, so -par N output matches -par 1 exactly.
	mod := analyzers.BuildModule(loader.Fset(), pkgs, &analyzers.ModuleOptions{IncludeTests: *tests})
	perPkg := sweep.Map(context.Background(), *par, pkgs, func(i int, pkg *analyzers.Package) []analyzers.Finding {
		return mod.RunPackage(pkg, checks)
	})
	var findings []analyzers.Finding
	for _, pf := range perPkg {
		findings = append(findings, pf...)
	}
	analyzers.SortFindings(findings)

	rel := func(path string) string {
		if r, err := filepath.Rel(root, path); err == nil {
			return filepath.ToSlash(r)
		}
		return path
	}
	relHops := func(why []string) []string {
		out := make([]string, len(why))
		for i, hop := range why {
			out[i] = strings.ReplaceAll(hop, root+string(filepath.Separator), "")
		}
		return out
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: rel(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column,
				Check: f.Check, Message: f.Message, Why: relHops(f.Why),
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "tianhelint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n",
				rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Check)
			if *why {
				for _, hop := range relHops(f.Why) {
					fmt.Fprintf(stdout, "\twhy: %s\n", hop)
				}
			}
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "tianhelint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// Command tianhelint runs the repository's custom static analyzer suite
// (internal/analyzers) over every non-test package in the module and
// reports violations of the simulator's determinism, telemetry, and
// numerics invariants with file:line:col positions. It exits 1 when any
// finding survives lint:ignore suppression, 2 on load errors, 0 on a
// clean tree — `make lint` and scripts/check.sh gate on exactly this.
//
// Usage:
//
//	tianhelint [-json] [-checks nowalltime,floateq,...] [-list]
//
// Findings can be suppressed per site with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tianhe/internal/analyzers"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run(stdout, stderr *os.File, args []string) int {
	fs := flag.NewFlagSet("tianhelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	checks := analyzers.All()
	if *checksFlag != "" {
		checks = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			a := analyzers.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "tianhelint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}
	root, err := analyzers.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "tianhelint: %v\n", err)
		return 2
	}

	findings := analyzers.Run(loader.Fset(), pkgs, checks)

	rel := func(path string) string {
		if r, err := filepath.Rel(root, path); err == nil {
			return filepath.ToSlash(r)
		}
		return path
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: rel(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column,
				Check: f.Check, Message: f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "tianhelint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n",
				rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Check)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "tianhelint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

package main

import (
	"reflect"
	"testing"

	"tianhe/internal/experiments"
	"tianhe/internal/telemetry"
)

// Short parameters for the CI golden run: healthy vs lost-gpu.
const (
	goldenSeed = uint64(experiments.DefaultSeed)
	goldenN    = 4096
	goldenOps  = 28
)

// TestHealthyScenarioHasZeroHookOverhead is the golden healthy run: with an
// empty injector attached to every hook, virtual time must not move at all
// relative to the hookless reference.
func TestHealthyScenarioHasZeroHookOverhead(t *testing.T) {
	cells, err := experiments.FaultSweep("healthy", goldenSeed, goldenN, goldenOps, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d policies, want 3", len(cells))
	}
	for _, c := range cells {
		if c.OverheadPct != 0 {
			t.Errorf("%s: empty-injector overhead %+.6f%%, want exactly 0", c.Policy, c.OverheadPct)
		}
		if c.Stalled || c.OpsDone != goldenOps {
			t.Errorf("%s: healthy run stalled=%v ops=%d/%d", c.Policy, c.Stalled, c.OpsDone, goldenOps)
		}
		if c.FaultSeconds != c.HealthySeconds {
			t.Errorf("%s: attached run %v s vs reference %v s — hooks moved virtual time", c.Policy, c.FaultSeconds, c.HealthySeconds)
		}
	}
}

// TestLostGPUAcceptance is the golden lost-gpu run, asserting the headline
// claim: the adaptive runtime recovers to >= 90% of its healthy steady
// state after device restore, while static and offline-trained stall on
// the dead context.
func TestLostGPUAcceptance(t *testing.T) {
	tel := telemetry.New()
	cells, err := experiments.FaultSweep("lost-gpu", goldenSeed, goldenN, goldenOps, tel, 1)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]experiments.FaultCell{}
	for _, c := range cells {
		byPolicy[c.Policy] = c
	}

	ad := byPolicy["adaptive"]
	if ad.Stalled {
		t.Fatal("adaptive runtime stalled — fallback did not engage")
	}
	if ad.OpsDone != goldenOps {
		t.Fatalf("adaptive completed %d/%d ops", ad.OpsDone, goldenOps)
	}
	if ad.SteadySS < experiments.RecoveryThreshold*ad.HealthySS {
		t.Fatalf("adaptive steady state %v below %v%% of healthy %v",
			ad.SteadySS, 100*experiments.RecoveryThreshold, ad.HealthySS)
	}
	if ad.RecoverySec < 0 {
		t.Fatal("adaptive never regained the recovery threshold after restore")
	}

	for _, policy := range []string{"static", "qilin-trained"} {
		c := byPolicy[policy]
		if !c.Stalled {
			t.Errorf("%s survived the outage — context-loss semantics broken", policy)
		}
		if c.OpsDone >= goldenOps {
			t.Errorf("%s completed all ops despite stalling", policy)
		}
	}

	// Fault activations and recoveries must be visible as trace events.
	var lossSpan, fallback, reinit bool
	for _, e := range tel.Trace.Events() {
		switch {
		case e.Track == "fault" && e.Name == "gpu.loss":
			lossSpan = true
		case e.Name == "gpu.fallback":
			fallback = true
		case e.Name == "gpu.reinit":
			reinit = true
		}
	}
	if !lossSpan || !fallback || !reinit {
		t.Errorf("trace missing fault events: loss=%v fallback=%v reinit=%v", lossSpan, fallback, reinit)
	}
}

// TestSweepIsDeterministic: identical seeds must reproduce every metric
// bit for bit, fault schedule and all.
func TestSweepIsDeterministic(t *testing.T) {
	a, err := experiments.FaultSweep("lost-gpu", goldenSeed, goldenN, goldenOps, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.FaultSweep("lost-gpu", goldenSeed, goldenN, goldenOps, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweeps diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestNetStormDeterministicAndRecovered(t *testing.T) {
	a, err := experiments.NetStorm(goldenSeed, 8, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.NetStorm(goldenSeed, 8, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("net storms diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Drops == 0 || a.Retries != a.Drops {
		t.Fatalf("drops %d retries %d — every drop must be retried", a.Drops, a.Retries)
	}
	if a.FaultSeconds <= a.HealthySeconds {
		t.Fatal("flaky fabric not slower than healthy")
	}
}

func TestFailoverCheckpointWins(t *testing.T) {
	res := experiments.Failover(goldenSeed, 9728, nil, 1)
	if res.Scratch.Failures != 1 || res.Checkpointed.Failures != 1 {
		t.Fatalf("failures: scratch %d ckpt %d", res.Scratch.Failures, res.Checkpointed.Failures)
	}
	if res.Checkpointed.Seconds >= res.Scratch.Seconds {
		t.Fatalf("checkpointed %v s not faster than scratch %v s",
			res.Checkpointed.Seconds, res.Scratch.Seconds)
	}
	if res.Checkpointed.RedoneIterations > 1 {
		t.Fatalf("checkpointed run redid %d iterations", res.Checkpointed.RedoneIterations)
	}
}

// TestSDCAcceptance is the golden silent-data-corruption run, asserting the
// scenario's headline claim at N=9728: every injected strike is detected
// and localized, at least 90% are repaired by recomputing just the struck
// task (sdc-single and sdc-dma correct 100% without touching a checkpoint),
// the real-arithmetic LU residual stays under the HPL bound, and checksum
// verification costs less than 5% of the virtual makespan. Byte-identical
// for any worker count.
func TestSDCAcceptance(t *testing.T) {
	for _, sc := range []string{"sdc-single", "sdc-dma"} {
		res, err := experiments.SDCSweep(sc, goldenSeed, 9728, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Injected == 0 {
			t.Fatalf("%s: no strikes delivered — the scenario tested nothing", sc)
		}
		if err := experiments.SDCVerdict(res); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if int64(res.Faulted.SDCDetected) != res.Injected {
			t.Fatalf("%s: %d delivered, %d detected", sc, res.Injected, res.Faulted.SDCDetected)
		}
		if f := res.CorrectedFrac(); f < experiments.SDCCorrectionTarget {
			t.Fatalf("%s: corrected %.1f%% of detections", sc, 100*f)
		}
		if !res.ResidualPassed {
			t.Fatalf("%s: real LU residual %g failed", sc, res.Residual)
		}
		if res.OverheadPct >= experiments.SDCVerifyBudgetPct {
			t.Fatalf("%s: verification overhead %.2f%%", sc, res.OverheadPct)
		}

		par, err := experiments.SDCSweep(sc, goldenSeed, 9728, nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		res.Healthy.Part, res.VerifyClean.Part, res.Faulted.Part = nil, nil, nil
		par.Healthy.Part, par.VerifyClean.Part, par.Faulted.Part = nil, nil, nil
		if !reflect.DeepEqual(res, par) {
			t.Fatalf("%s: -par 1 and -par 8 sweeps diverged:\n%+v\nvs\n%+v", sc, res, par)
		}
	}
}

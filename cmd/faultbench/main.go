// Command faultbench sweeps the fault-injection scenarios across the
// partitioning policies and reports resilience metrics: recovery time after
// device restore, steady-state GFLOPS delta under degradation, retry cost
// on a flaky fabric, and checkpoint/restart cost under element failure.
// The headline claim it demonstrates: under the lost-gpu scenario the
// adaptive runtime recovers to >= 90% of its healthy steady state after the
// device returns, while the static and offline-trained policies stall on
// the dead context and never finish. All runs are bit-reproducible for a
// fixed -seed and any -par: scenarios run concurrently into isolated
// telemetry bundles and per-scenario output buffers, both emitted in
// scenario order. -trace writes Chrome trace-event JSON (fault windows
// appear as spans on the "fault" track); -metrics dumps the telemetry
// registry.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tianhe/internal/experiments"
	"tianhe/internal/fault"
	"tianhe/internal/hpl"
	"tianhe/internal/sweep"
	"tianhe/internal/telemetry"
)

func main() {
	scenario := flag.String("scenario", "all", "fault scenario to run: "+strings.Join(fault.Scenarios, ", ")+", or all")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	n := flag.Int("n", 8192, "GEMM order per operation in the scenario sweeps")
	ops := flag.Int("ops", 48, "operations per run in the scenario sweeps")
	linpackN := flag.Int("linpack-n", 19456, "Linpack problem size for the element-fail scenario")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metric dump after the runs")
	parFlag := flag.Int("par", 0, "worker count (<=0: GOMAXPROCS); output is identical for every value")
	elastic := flag.Bool("elastic", false, "with the element-fail scenario, also report elastic recovery (survivor-side reconstruction, no rollback) against the checkpoint/restart path")
	flag.Parse()
	par := sweep.Workers(*parFlag)

	var tel *telemetry.Telemetry
	if *tracePath != "" || *metrics {
		tel = telemetry.New()
	}

	scenarios := fault.Scenarios
	if *scenario != "all" {
		scenarios = []string{*scenario}
	}
	// Scenarios are independent runs: fan them out, buffer each scenario's
	// report, and print the buffers in scenario order.
	type report struct {
		text string
		err  error
	}
	reports := sweep.MapTel(context.Background(), par, tel, scenarios,
		func(_ int, sc string, tel *telemetry.Telemetry) report {
			var buf bytes.Buffer
			err := runScenario(&buf, sc, *seed, *n, *ops, *linpackN, *elastic, tel, par)
			return report{text: buf.String(), err: err}
		})
	for i, r := range reports {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: %v\n", r.err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.text)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			if err = tel.Trace.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", tel.Trace.Len(), *tracePath)
	}
	if *metrics {
		fmt.Println()
		tel.Metrics.WriteText(os.Stdout)
	}
}

func runScenario(w io.Writer, sc string, seed uint64, n, ops, linpackN int, elastic bool, tel *telemetry.Telemetry, par int) error {
	switch {
	case strings.Contains(sc, "sdc"):
		// Plain sdc-* scenarios and compositions layering them onto timing
		// faults (element death included: e.g. element-fail+sdc-single) run
		// the ABFT sweep — the stepper picks element failures off the same
		// injector.
		return sdcReport(w, sc, seed, linpackN, tel, par)
	case sc == "flaky-net":
		return netStorm(w, seed, tel)
	case sc == "element-fail":
		failover(w, seed, linpackN, tel, par)
		if elastic {
			return elasticReport(w, seed, tel, par)
		}
		return nil
	default:
		return policySweep(w, sc, seed, n, ops, tel, par)
	}
}

// elasticReport runs the ISSUE 10 elastic-recovery comparison: the real
// small-N elastic solver (bit-identity against a shrunk-from-start run) and
// the paper-scale model arm, recovery cost against the checkpoint redo.
func elasticReport(w io.Writer, seed uint64, tel *telemetry.Telemetry, par int) error {
	res, err := experiments.ElasticRecovery(seed, 0, tel, par)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	experiments.WriteElastic(w, res)
	if err := experiments.ElasticVerdict(res); err != nil {
		fmt.Fprintf(w, "  verdict: FAIL — %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "  verdict: PASS — survivors bit-identical, model recovery %.3f s < checkpoint redo %.3f s, encode overhead %.2f%% < 5%%\n",
		res.ModelFailed.RecoverySeconds, res.ModelFailed.CheckpointRedoSeconds, res.ModelOverheadPct)
	return nil
}

// sdcReport runs the silent-data-corruption sweep and prints its acceptance
// verdict: every injected strike detected and localized, at least 90% of
// detections repaired by task recomputation alone, the real-arithmetic LU
// residual under the HPL bound, and the verification overhead inside its 5%
// budget. The sdc-burst drill intentionally fails the correction floor —
// its multi-element strikes all escalate to checkpoint restore — so its
// verdict line reports the escalation path instead of PASS/FAIL.
func sdcReport(w io.Writer, sc string, seed uint64, linpackN int, tel *telemetry.Telemetry, par int) error {
	res, err := experiments.SDCSweep(sc, seed, linpackN, tel, par)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %-13s (Linpack N=%d, seed %d)\n", sc, res.N, seed)
	fmt.Fprintf(w, "  unprotected:      %10.3f s  %8.1f GFLOPS\n", res.Healthy.Seconds, res.Healthy.GFLOPS)
	fmt.Fprintf(w, "  verified clean:   %10.3f s  %8.1f GFLOPS  (%+.2f%% overhead, %.3f s of checks)\n",
		res.VerifyClean.Seconds, res.VerifyClean.GFLOPS, res.OverheadPct, res.VerifyClean.VerifySeconds)
	fmt.Fprintf(w, "  under corruption: %10.3f s  %8.1f GFLOPS  (%+.2f%%)\n",
		res.Faulted.Seconds, res.Faulted.GFLOPS, res.FaultedPct)
	f := res.Faulted
	fmt.Fprintf(w, "  strikes: %d injected, %d detected, %d recomputed in place, %d escalated (%d checkpoint restores, %d iterations redone)\n",
		res.Injected, f.SDCDetected, f.SDCCorrected, f.SDCEscalated, f.SDCRestores, f.RedoneIterations)
	fmt.Fprintf(w, "  real LU (N=%d): %d/%d updates corrupted, %d detected, %d corrected + %d recomputed, residual %.4f (bound %g)\n",
		res.RealN, res.RealInjected, res.RealUpdates, res.RealDetected,
		res.RealCorrected, res.RealRecomputed, res.Residual, hpl.ResidualThreshold)
	if f.SDCDetected > 0 && f.SDCCorrected == 0 {
		fmt.Fprintf(w, "  escalation drill: every strike uncorrectable by design; recovery fell back to checkpoint restore %d times and the run still finished\n",
			f.SDCRestores)
		return nil
	}
	if err := experiments.SDCVerdict(res); err != nil {
		fmt.Fprintf(w, "  verdict: FAIL — %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "  verdict: PASS — 100%% detected/localized, %.1f%% corrected without restore, residual passes, overhead %.2f%% < %.0f%%\n",
		100*res.CorrectedFrac(), res.OverheadPct, experiments.SDCVerifyBudgetPct)
	return nil
}

func policySweep(w io.Writer, sc string, seed uint64, n, ops int, tel *telemetry.Telemetry, par int) error {
	cells, err := experiments.FaultSweep(sc, seed, n, ops, tel, par)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %-13s (N=%d, %d ops, seed %d)\n", sc, n, ops, seed)
	fmt.Fprintf(w, "  %-14s %10s %10s %9s %9s %11s %9s\n",
		"policy", "healthy", "steady", "delta", "trough", "recovery", "ops")
	fmt.Fprintf(w, "  %-14s %10s %10s %9s %9s %11s %9s\n",
		"", "GFLOPS", "GFLOPS", "%", "GFLOPS", "s", "done")
	for _, c := range cells {
		delta := 0.0
		if c.HealthySS > 0 {
			delta = 100 * (c.SteadySS - c.HealthySS) / c.HealthySS
		}
		recovery := "-"
		switch {
		case c.Stalled:
			recovery = "stalled"
		case c.RecoverySec > 0:
			recovery = fmt.Sprintf("%.3f", c.RecoverySec)
		case c.RecoverySec < 0:
			recovery = "never"
		}
		opsCol := fmt.Sprintf("%d/%d", c.OpsDone, c.OpsTotal)
		fmt.Fprintf(w, "  %-14s %10.1f %10.1f %+8.1f%% %9.1f %11s %9s\n",
			c.Policy, c.HealthySS, c.SteadySS, delta, c.TroughOp, recovery, opsCol)
	}
	switch sc {
	case "healthy":
		for _, c := range cells {
			if c.Policy == "adaptive" {
				fmt.Fprintf(w, "  hook overhead with an empty injector attached: %+.3f%% virtual time\n", c.OverheadPct)
			}
		}
	case "lost-gpu":
		fmt.Fprintln(w)
		verdict(w, cells)
	}
	return nil
}

// verdict prints the acceptance condition for the lost-gpu scenario.
func verdict(w io.Writer, cells []experiments.FaultCell) {
	for _, c := range cells {
		switch c.Policy {
		case "adaptive":
			ok := !c.Stalled && c.SteadySS >= experiments.RecoveryThreshold*c.HealthySS && c.RecoverySec >= 0
			fmt.Fprintf(w, "  adaptive recovered to >=%.0f%% of healthy steady state after restore: %v (%.1f%% in %.3f s)\n",
				100*experiments.RecoveryThreshold, ok, 100*c.SteadySS/c.HealthySS, c.RecoverySec)
		case "static", "qilin-trained":
			if c.Stalled {
				fmt.Fprintf(w, "  %s did not recover: stalled at %.3f s — context lost, runtime not fault-aware (%d/%d ops)\n",
					c.Policy, c.StallAtSec, c.OpsDone, c.OpsTotal)
			} else {
				fmt.Fprintf(w, "  %s unexpectedly survived the outage\n", c.Policy)
			}
		}
	}
}

func netStorm(w io.Writer, seed uint64, tel *telemetry.Telemetry) error {
	res, err := experiments.NetStorm(seed, 16, 12, tel)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %-13s (%d ranks, %d collective rounds, seed %d)\n",
		"flaky-net", res.Ranks, res.Rounds, seed)
	fmt.Fprintf(w, "  healthy fabric:   %12.6f s\n", res.HealthySeconds)
	fmt.Fprintf(w, "  flaky fabric:     %12.6f s  (%+.1f%%)\n", res.FaultSeconds, res.SlowdownPct)
	fmt.Fprintf(w, "  drops: %d, retries: %d — every loss recovered by bounded exponential backoff\n",
		res.Drops, res.Retries)
	return nil
}

func failover(w io.Writer, seed uint64, n int, tel *telemetry.Telemetry, par int) {
	res := experiments.Failover(seed, n, tel, par)
	fmt.Fprintf(w, "scenario %-13s (Linpack N=%d, failure at 50%% of healthy makespan, seed %d)\n",
		"element-fail", res.N, seed)
	fmt.Fprintf(w, "  healthy:          %10.3f s  %8.1f GFLOPS\n", res.Healthy.Seconds, res.Healthy.GFLOPS)
	fmt.Fprintf(w, "  scratch restart:  %10.3f s  %8.1f GFLOPS  (%+.1f%%, redid %d iterations)\n",
		res.Scratch.Seconds, res.Scratch.GFLOPS, res.ScratchPct, res.Scratch.RedoneIterations)
	fmt.Fprintf(w, "  checkpointed:     %10.3f s  %8.1f GFLOPS  (%+.1f%%, redid %d, wrote %.3f s of checkpoints)\n",
		res.Checkpointed.Seconds, res.Checkpointed.GFLOPS, res.CheckpointPct,
		res.Checkpointed.RedoneIterations, res.Checkpointed.CheckpointSeconds)
}

// Command faultbench sweeps the fault-injection scenarios across the
// partitioning policies and reports resilience metrics: recovery time after
// device restore, steady-state GFLOPS delta under degradation, retry cost
// on a flaky fabric, and checkpoint/restart cost under element failure.
// The headline claim it demonstrates: under the lost-gpu scenario the
// adaptive runtime recovers to >= 90% of its healthy steady state after the
// device returns, while the static and offline-trained policies stall on
// the dead context and never finish. All runs are bit-reproducible for a
// fixed -seed. -trace writes Chrome trace-event JSON (fault windows appear
// as spans on the "fault" track); -metrics dumps the telemetry registry.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tianhe/internal/experiments"
	"tianhe/internal/fault"
	"tianhe/internal/telemetry"
)

func main() {
	scenario := flag.String("scenario", "all", "fault scenario to run: "+strings.Join(fault.Scenarios, ", ")+", or all")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	n := flag.Int("n", 8192, "GEMM order per operation in the scenario sweeps")
	ops := flag.Int("ops", 48, "operations per run in the scenario sweeps")
	linpackN := flag.Int("linpack-n", 19456, "Linpack problem size for the element-fail scenario")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metric dump after the runs")
	flag.Parse()

	var tel *telemetry.Telemetry
	if *tracePath != "" || *metrics {
		tel = telemetry.New()
	}

	scenarios := fault.Scenarios
	if *scenario != "all" {
		scenarios = []string{*scenario}
	}
	for i, sc := range scenarios {
		if i > 0 {
			fmt.Println()
		}
		if err := runScenario(sc, *seed, *n, *ops, *linpackN, tel); err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			if err = tel.Trace.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", tel.Trace.Len(), *tracePath)
	}
	if *metrics {
		fmt.Println()
		tel.Metrics.WriteText(os.Stdout)
	}
}

func runScenario(sc string, seed uint64, n, ops, linpackN int, tel *telemetry.Telemetry) error {
	switch sc {
	case "flaky-net":
		return netStorm(seed, tel)
	case "element-fail":
		failover(seed, linpackN, tel)
		return nil
	default:
		return sweep(sc, seed, n, ops, tel)
	}
}

func sweep(sc string, seed uint64, n, ops int, tel *telemetry.Telemetry) error {
	cells, err := experiments.FaultSweep(sc, seed, n, ops, tel)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %-13s (N=%d, %d ops, seed %d)\n", sc, n, ops, seed)
	fmt.Printf("  %-14s %10s %10s %9s %9s %11s %9s\n",
		"policy", "healthy", "steady", "delta", "trough", "recovery", "ops")
	fmt.Printf("  %-14s %10s %10s %9s %9s %11s %9s\n",
		"", "GFLOPS", "GFLOPS", "%", "GFLOPS", "s", "done")
	for _, c := range cells {
		delta := 0.0
		if c.HealthySS > 0 {
			delta = 100 * (c.SteadySS - c.HealthySS) / c.HealthySS
		}
		recovery := "-"
		switch {
		case c.Stalled:
			recovery = "stalled"
		case c.RecoverySec > 0:
			recovery = fmt.Sprintf("%.3f", c.RecoverySec)
		case c.RecoverySec < 0:
			recovery = "never"
		}
		opsCol := fmt.Sprintf("%d/%d", c.OpsDone, c.OpsTotal)
		fmt.Printf("  %-14s %10.1f %10.1f %+8.1f%% %9.1f %11s %9s\n",
			c.Policy, c.HealthySS, c.SteadySS, delta, c.TroughOp, recovery, opsCol)
	}
	switch sc {
	case "healthy":
		for _, c := range cells {
			if c.Policy == "adaptive" {
				fmt.Printf("  hook overhead with an empty injector attached: %+.3f%% virtual time\n", c.OverheadPct)
			}
		}
	case "lost-gpu":
		fmt.Println()
		verdict(cells)
	}
	return nil
}

// verdict prints the acceptance condition for the lost-gpu scenario.
func verdict(cells []experiments.FaultCell) {
	for _, c := range cells {
		switch c.Policy {
		case "adaptive":
			ok := !c.Stalled && c.SteadySS >= experiments.RecoveryThreshold*c.HealthySS && c.RecoverySec >= 0
			fmt.Printf("  adaptive recovered to >=%.0f%% of healthy steady state after restore: %v (%.1f%% in %.3f s)\n",
				100*experiments.RecoveryThreshold, ok, 100*c.SteadySS/c.HealthySS, c.RecoverySec)
		case "static", "qilin-trained":
			if c.Stalled {
				fmt.Printf("  %s did not recover: stalled at %.3f s — context lost, runtime not fault-aware (%d/%d ops)\n",
					c.Policy, c.StallAtSec, c.OpsDone, c.OpsTotal)
			} else {
				fmt.Printf("  %s unexpectedly survived the outage\n", c.Policy)
			}
		}
	}
}

func netStorm(seed uint64, tel *telemetry.Telemetry) error {
	res, err := experiments.NetStorm(seed, 16, 12, tel)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %-13s (%d ranks, %d collective rounds, seed %d)\n",
		"flaky-net", res.Ranks, res.Rounds, seed)
	fmt.Printf("  healthy fabric:   %12.6f s\n", res.HealthySeconds)
	fmt.Printf("  flaky fabric:     %12.6f s  (%+.1f%%)\n", res.FaultSeconds, res.SlowdownPct)
	fmt.Printf("  drops: %d, retries: %d — every loss recovered by bounded exponential backoff\n",
		res.Drops, res.Retries)
	return nil
}

func failover(seed uint64, n int, tel *telemetry.Telemetry) {
	res := experiments.Failover(seed, n, tel)
	fmt.Printf("scenario %-13s (Linpack N=%d, failure at 50%% of healthy makespan, seed %d)\n",
		"element-fail", res.N, seed)
	fmt.Printf("  healthy:          %10.3f s  %8.1f GFLOPS\n", res.Healthy.Seconds, res.Healthy.GFLOPS)
	fmt.Printf("  scratch restart:  %10.3f s  %8.1f GFLOPS  (%+.1f%%, redid %d iterations)\n",
		res.Scratch.Seconds, res.Scratch.GFLOPS, res.ScratchPct, res.Scratch.RedoneIterations)
	fmt.Printf("  checkpointed:     %10.3f s  %8.1f GFLOPS  (%+.1f%%, redid %d, wrote %.3f s of checkpoints)\n",
		res.Checkpointed.Seconds, res.Checkpointed.GFLOPS, res.CheckpointPct,
		res.Checkpointed.RedoneIterations, res.Checkpointed.CheckpointSeconds)
}

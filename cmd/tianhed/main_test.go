package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tianhe/internal/experiments"
	"tianhe/internal/serve"
	"tianhe/internal/telemetry"
)

func testDaemon(t *testing.T) *daemon {
	t.Helper()
	tel := telemetry.New()
	d, err := newDaemon(serve.Config{Seed: 42, Workers: 2, Telemetry: tel}, tel)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func post(t *testing.T, d *daemon, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	d.mux().ServeHTTP(rec, req)
	return rec
}

func TestDaemonJobLifecycle(t *testing.T) {
	d := testDaemon(t)
	rec := post(t, d, `{"tenant":"acme","kind":"solve","n":512}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp, err := serve.ParseResponse(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	if resp.Status != "ok" || resp.ID != 1 || resp.Tenant != "acme" {
		t.Fatalf("response: %+v", resp)
	}
	// A second job advances the ID and completes as well.
	resp2, err := serve.ParseResponse(post(t, d, `{"tenant":"acme","kind":"dgemm","m":64,"n":256,"k":256}`).Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ID != 2 || resp2.Status != "ok" {
		t.Fatalf("second response: %+v", resp2)
	}
}

func TestDaemonRejectsMalformed(t *testing.T) {
	d := testDaemon(t)
	for _, body := range []string{
		`not json`,
		`{"tenant":"a","kind":"lu","n":64}`,
		`{"kind":"solve","n":64}`,
		`{"tenant":"a","kind":"solve","n":-1}`,
	} {
		if rec := post(t, d, body); rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
}

func TestDaemonMetricsAndHealth(t *testing.T) {
	d := testDaemon(t)
	post(t, d, `{"tenant":"acme","kind":"solve","n":256}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	d.mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "serve.jobs.completed") {
		t.Fatalf("metrics: %d\n%s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "serve.tenant.acme.latency_seconds") {
		t.Fatalf("per-tenant metrics missing:\n%s", rec.Body.String())
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	d.mux().ServeHTTP(rec, req)
	var health struct {
		Status string
		Stats  serve.Stats
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Stats.Completed != 1 {
		t.Fatalf("health: %+v", health)
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates("500, 1000,2000")
	if err != nil || len(rates) != 3 || rates[2] != 2000 {
		t.Fatalf("rates %v err %v", rates, err)
	}
	if _, err := parseRates("12,zero"); err == nil {
		t.Fatal("bad rate accepted")
	}
	if rates, err := parseRates(""); err != nil || rates != nil {
		t.Fatalf("empty: %v %v", rates, err)
	}
}

func TestRunBenchAndRegressionGuard(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var buf bytes.Buffer
	// A deliberately small trajectory to keep the test tier fast.
	if err := runBench(&buf, 42, 128, 2, "1000,4000", out, "", 10, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.ServeBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != experiments.ServeBenchSchema || res.PeakThroughput <= 0 {
		t.Fatalf("artifact: %+v", res)
	}
	if len(res.Healthy) != 2 || len(res.LostGPU) != 2 {
		t.Fatalf("points: %d healthy, %d lost-gpu", len(res.Healthy), len(res.LostGPU))
	}
	if !strings.Contains(buf.String(), "saturation") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}

	// Same seed against its own artifact: deterministic, passes the guard.
	buf.Reset()
	if err := runBench(&buf, 42, 128, 2, "1000,4000", out, out, 10, 2); err != nil {
		t.Fatalf("self-baseline regression: %v", err)
	}
	if !strings.Contains(buf.String(), "regression guard") {
		t.Fatalf("guard line missing:\n%s", buf.String())
	}

	// An inflated baseline must trip the guard.
	res.PeakThroughput *= 2
	for i := range res.Healthy {
		res.Healthy[i].Throughput *= 2
	}
	inflated := filepath.Join(dir, "inflated.json")
	data, _ = json.Marshal(res)
	if err := os.WriteFile(inflated, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBench(&buf, 42, 128, 2, "1000,4000", out, inflated, 10, 2); err == nil {
		t.Fatal("inflated baseline passed the regression guard")
	}
}

// Command tianhed is the solver service daemon: a JSON-over-HTTP front end
// for internal/serve that multiplexes concurrent solve/DGEMM jobs onto the
// adaptive hybrid runtime. It runs in two modes.
//
// Daemon mode (default) listens on -addr and serves:
//
//	POST /v1/jobs  — submit one job ({"tenant","kind","m","n","k"});
//	                 200 with the job's outcome, 429 with a Retry-After
//	                 estimate when the bounded admission queue is full,
//	                 400 on malformed requests.
//	GET  /metrics  — the telemetry registry as a text dump.
//	GET  /healthz  — liveness plus the service's aggregate stats.
//
// This is the one place in the repository that reads the wall clock: real
// arrival instants are mapped onto the service's virtual timeline at the
// edge, and everything behind the handler — admission, batching, dispatch,
// fault handling — runs deterministic virtual time (the nowalltime and
// detpure lint checks enforce the boundary over internal/; cmd/ is the
// contract table's declared wall-clock edge).
//
// Bench mode (-bench) replays the seeded open-loop load sweep (healthy and
// lost-gpu) entirely in virtual time and writes BENCH_serve.json, the
// repository's perf-trajectory artifact. With -baseline it compares the
// fresh run against the committed artifact and exits non-zero if sustained
// throughput regressed by more than -tolerance percent; results are
// bit-reproducible for a fixed -seed and any -par, so a regression is a
// code change, never noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"tianhe/internal/experiments"
	"tianhe/internal/serve"
	"tianhe/internal/sim"
	"tianhe/internal/sweep"
	"tianhe/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "daemon listen address")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	workers := flag.Int("workers", serve.DefaultWorkers, "dispatcher pool size (compute elements)")
	queueCap := flag.Int("queue", serve.DefaultQueueCap, "admission queue bound (jobs)")
	benchMode := flag.Bool("bench", false, "run the serving benchmark and write -o instead of serving")
	clients := flag.Int("clients", 1200, "simulated open-loop clients in -bench mode")
	ratesFlag := flag.String("rates", "", "comma-separated arrival rates for -bench (default "+
		fmt.Sprint(experiments.DefaultServeRates)+")")
	out := flag.String("o", "BENCH_serve.json", "benchmark output path")
	baseline := flag.String("baseline", "", "committed benchmark to guard against (errors on regression)")
	tolerance := flag.Float64("tolerance", 10, "throughput regression tolerance in percent")
	parFlag := flag.Int("par", 0, "worker count (<=0: GOMAXPROCS); bench output is identical for every value")
	flag.Parse()
	par := sweep.Workers(*parFlag)

	if *benchMode {
		if err := runBench(os.Stdout, *seed, *clients, *workers, *ratesFlag, *out, *baseline, *tolerance, par); err != nil {
			fmt.Fprintf(os.Stderr, "tianhed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	tel := telemetry.New()
	d, err := newDaemon(serve.Config{
		Seed: *seed, Workers: *workers, QueueCap: *queueCap, Telemetry: tel,
	}, tel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tianhed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tianhed: serving on %s (seed %d, %d workers, queue %d)\n",
		*addr, *seed, *workers, *queueCap)
	if err := http.ListenAndServe(*addr, d.mux()); err != nil {
		fmt.Fprintf(os.Stderr, "tianhed: %v\n", err)
		os.Exit(1)
	}
}

// parseRates parses a comma-separated rate list; empty selects the default
// sweep.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// runBench runs the benchmark trajectory, writes the artifact, and applies
// the regression guard when a baseline is given.
func runBench(w io.Writer, seed uint64, clients, workers int, ratesFlag, out, baseline string, tolerance float64, par int) error {
	rates, err := parseRates(ratesFlag)
	if err != nil {
		return err
	}
	res, err := experiments.ServeBench(seed, clients, workers, rates, par)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "serve bench: seed %d, %d clients, %d workers\n", res.Seed, res.Clients, res.Workers)
	experiments.WriteServeTable(w, "healthy", res.Healthy)
	experiments.WriteServeTable(w, "lost-gpu", res.LostGPU)
	fmt.Fprintf(w, "saturation at %g jobs/s offered, peak sustained %.1f jobs/s\n",
		res.SaturationRate, res.PeakThroughput)
	fmt.Fprintf(w, "wrote %s\n", out)

	if baseline == "" {
		return nil
	}
	baseData, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base experiments.ServeBenchResult
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Schema != experiments.ServeBenchSchema {
		return fmt.Errorf("baseline schema %q, want %q", base.Schema, experiments.ServeBenchSchema)
	}
	if err := experiments.ServeRegression(res, base, tolerance); err != nil {
		return err
	}
	fmt.Fprintf(w, "regression guard: peak %.1f jobs/s within %.0f%% of baseline %.1f — ok\n",
		res.PeakThroughput, tolerance, base.PeakThroughput)
	return nil
}

// daemon owns one serve.Server behind a mutex: the deterministic core is
// single-threaded by design, so concurrent HTTP requests serialize at the
// edge and their wall-clock arrival spacing becomes the virtual-time
// arrival process the adaptive batcher learns from.
type daemon struct {
	mu    sync.Mutex
	srv   *serve.Server
	tel   *telemetry.Telemetry
	lim   serve.Limits
	start time.Time
}

func newDaemon(cfg serve.Config, tel *telemetry.Telemetry) (*daemon, error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	//lint:ignore nowalltime the daemon edge anchors the virtual timeline to the process start; everything behind the handlers stays virtual
	start := time.Now()
	return &daemon{srv: srv, tel: tel, lim: cfg.Limits, start: start}, nil
}

// arrivalTime maps the wall clock onto the virtual timeline: seconds since
// daemon start, clamped so it never precedes the event loop (jobs complete
// in virtual time, which may run ahead of the wall).
func (d *daemon) arrivalTime() sim.Time {
	//lint:ignore nowalltime the one wall-clock read per request: real arrival instants parameterize the virtual replay
	at := sim.Time(time.Since(d.start).Seconds())
	if now := d.srv.Now(); at < now {
		at = now
	}
	return at
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", d.handleJob)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/healthz", d.handleHealth)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (d *daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, _, err := serve.ParseRequest(body, d.lim)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	d.mu.Lock()
	id, err := d.srv.SubmitAt(req, d.arrivalTime())
	if err == nil {
		// Drain the event loop: the job's batch seals (window timers are
		// virtual events), dispatches, and completes before we answer.
		d.srv.Run()
	}
	var res serve.Result
	var ok bool
	if err == nil {
		res, ok = d.srv.Result(id)
	}
	d.mu.Unlock()

	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusInternalServerError, "job vanished from the event loop")
		return
	}
	resp := serve.ResponseFromResult(res)
	data, err := serve.MarshalResponse(resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if res.Rejected {
		w.Header().Set("Retry-After", strconv.Itoa(int(res.RetryAfter)+1))
		w.WriteHeader(http.StatusTooManyRequests)
	}
	w.Write(append(data, '\n'))
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	d.tel.Metrics.WriteText(w)
}

func (d *daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	st := d.srv.Stats()
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status": "ok",
		"stats":  st,
	})
}

// Command ablate runs the ablation studies behind the design choices
// DESIGN.md calls out: bounce-corner-turn ordering, EO block height,
// database_g granularity, transfer staging strategy, task tile extent, and
// the Linpack blocking factor NB the paper chose empirically (1216).
package main

import (
	"flag"
	"fmt"
	"os"

	"tianhe/internal/bench"
	"tianhe/internal/experiments"
	"tianhe/internal/perfmodel"
	"tianhe/internal/sweep"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	parFlag := flag.Int("par", 0, "worker count for the sweeps (<=0: GOMAXPROCS); output is identical for every value")
	flag.Parse()
	par := sweep.Workers(*parFlag)

	fmt.Println("Ablation 1 — task ordering (16384x16384x4096 DGEMM, reuse machinery off/on)")
	gb, sec := experiments.AblationOrdering(16384, 16384, 4096, par)
	for i, name := range []string{"row-major, no cache", "bounce corner turn + cache"} {
		g, _ := gb.Y(float64(i))
		s, _ := sec.Y(float64(i))
		fmt.Printf("  %-28s %7.2f GB in   %7.3f s\n", name, g, s)
	}

	fmt.Println("\nAblation 2 — EO block height H (Fig. 6 double buffers)")
	bench.Table(os.Stdout, "H rows", "GFLOPS", experiments.AblationBlockRows(nil, par))

	fmt.Println("\nAblation 3 — database_g bucket count J (Section IV.B)")
	bench.Table(os.Stdout, "J buckets", "GFLOPS", experiments.AblationBuckets(nil, *seed, par))

	fmt.Println("\nAblation 4 — CPU-GPU staging strategy (Section V.A)")
	st := experiments.AblationStaging(*seed, par)
	for i, label := range experiments.StagingLabels {
		v, _ := st.Y(float64(i))
		fmt.Printf("  %-30s %8.1f GFLOPS\n", label, v)
	}

	fmt.Println("\nAblation 5 — task tile extent")
	bench.Table(os.Stdout, "tile", "GFLOPS", experiments.AblationTile(nil, par))

	fmt.Println("\nAblation 6 — Linpack blocking factor NB (paper chose 1216)")
	bench.Table(os.Stdout, "NB", "GFLOPS", experiments.AblationNB(nil, *seed, par))

	fmt.Println("\nAblation 7 — value of the second mapping level (database_c, Section IV.A)")
	for _, xeon := range []perfmodel.Xeon{perfmodel.XeonE5540, perfmodel.XeonE5450} {
		r := experiments.Level2Study(xeon, *seed)
		fmt.Printf("  %s: equal splits %.4f s, adaptive %.4f s  ->  %+.2f%%  (splits %v)\n",
			xeon, r.EqualSeconds, r.AdaptiveSeconds, r.Gain*100, fmtSplits(r.Splits))
	}
}

func fmtSplits(s []float64) string {
	out := "["
	for i, v := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", v)
	}
	return out + "]"
}

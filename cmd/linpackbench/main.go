// Command linpackbench regenerates Figures 9 and 10 of the paper: Linpack
// performance by problem size on a single compute element for the five
// configurations, the headline factors at N = 46000 (196.7 GFLOPS, 70.1% of
// peak, 3.3x the vendor library, 5.49x host-only), and — with -splits — the
// database_g snapshot of Figure 10 (GPU split ratio by workload) together
// with the GSplit evolution read back from the telemetry trace. -trace
// writes Chrome trace-event JSON; -metrics dumps the telemetry registry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tianhe/internal/adaptive"
	"tianhe/internal/bench"
	"tianhe/internal/element"
	"tianhe/internal/experiments"
	"tianhe/internal/linpacksim"
	"tianhe/internal/perfmodel"
	"tianhe/internal/sweep"
	"tianhe/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	splits := flag.Bool("splits", false, "print Figure 10 (GSplit by workload) instead of Figure 9")
	n := flag.Int("n", 46080, "problem size for the headline numbers / split snapshot")
	dbFile := flag.String("db", "", "persist database_g across runs: load it before an ACMLG+both run at -n and save the adapted state back (the paper's cross-run workflow)")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of the run(s) to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metric dump after the run(s)")
	par := flag.Int("par", 0, "worker count for the Figure 9 sweep (<=0: GOMAXPROCS); output is identical for every value")
	flag.Parse()

	var tel *telemetry.Telemetry
	if *tracePath != "" || *metrics || *splits {
		tel = telemetry.New() // -splits reads the GSplit series from the tracer
	}

	switch {
	case *dbFile != "":
		persistedRun(*seed, *n, *dbFile, tel)
	case *splits:
		fig10(*seed, *n, tel)
	default:
		fig9(*seed, tel, sweep.Workers(*par))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			if err = tel.Trace.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "linpackbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", tel.Trace.Len(), *tracePath)
	}
	if *metrics {
		fmt.Println()
		tel.Metrics.WriteText(os.Stdout)
	}
}

func fig9(seed uint64, tel *telemetry.Telemetry, par int) {
	fmt.Println("Figure 9 — Linpack performance by problem size (single compute element)")
	fmt.Println()
	series := experiments.Fig9Instrumented(seed, nil, tel, par)
	bench.Table(os.Stdout, "N", "GFLOPS", series...)
	fmt.Println()

	get := func(name string) float64 {
		for _, s := range series {
			if s.Name == name {
				return s.Last().Y
			}
		}
		return 0
	}
	cpu, acmlg, both := get("CPU"), get("ACMLG"), get("ACMLG+both")
	fmt.Printf("optimized Linpack:        %7.1f GFLOPS   (paper: 196.7)\n", both)
	fmt.Printf("fraction of element peak: %7.1f %%        (paper: 70.1%%, peak %.1f GFLOPS)\n",
		both/perfmodel.ElementPeakGFLOPS*100, perfmodel.ElementPeakGFLOPS)
	fmt.Printf("speedup over vendor lib:  %7.2f x        (paper: 3.3x)\n", both/acmlg)
	fmt.Printf("speedup over host-only:   %7.2f x        (paper: 5.49x)\n", both/cpu)
}

// persistedRun executes one adaptive Linpack with database_g loaded from
// (and saved back to) dbFile, so successive invocations start from the
// previous run's learned splits.
func persistedRun(seed uint64, n int, dbFile string, tel *telemetry.Telemetry) {
	var part *adaptive.Adaptive
	el := element.New(element.Config{Seed: seed, Virtual: true})
	if blob, err := os.ReadFile(dbFile); err == nil {
		var g adaptive.DatabaseG
		if err := json.Unmarshal(blob, &g); err != nil {
			fmt.Fprintf(os.Stderr, "linpackbench: corrupt database %s: %v\n", dbFile, err)
			os.Exit(1)
		}
		part = adaptive.NewAdaptiveFromDatabase(&g, el.CPU.NumCores())
		fmt.Printf("loaded database_g from %s\n", dbFile)
	} else {
		fmt.Printf("no database at %s; starting from the 0.889 peak ratio\n", dbFile)
	}
	cfg := linpacksim.Config{N: n, Variant: element.ACMLGBoth, Seed: seed, Telemetry: tel}
	if part != nil {
		cfg.Part = part
	}
	res := linpacksim.Run(cfg)
	fmt.Printf("N=%d NB=%d: %.1f GFLOPS\n", res.N, res.NB, res.GFLOPS)
	ad, ok := adaptive.AsAdaptive(res.Part)
	if !ok {
		fmt.Fprintln(os.Stderr, "linpackbench: run returned a non-adaptive partitioner")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(ad.G, "", "  ")
	if err == nil {
		err = os.WriteFile(dbFile, blob, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "linpackbench: saving database: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("saved adapted database_g to %s\n", dbFile)
}

func fig10(seed uint64, n int, tel *telemetry.Telemetry) {
	fmt.Println("Figure 10 — GPU split ratio by workload (database_g after one Linpack run)")
	fmt.Println()
	entries, initial := experiments.Fig10Instrumented(seed, n, tel)
	fmt.Printf("initial value (peak ratio): %.3f   (paper: 0.889)\n\n", initial)
	fmt.Printf("%-24s %-10s %s\n", "workload bucket (Gflop)", "GSplit", "state")
	for _, e := range entries {
		state := "initial"
		if e.Touched {
			state = "adapted"
		}
		fmt.Printf("(%9.1f, %9.1f]  %8.4f   %s\n", e.WorkLo/1e9, e.WorkHi/1e9, e.Split, state)
	}

	// The evolution view of Fig. 10: the per-update GSplit time series, read
	// back from the telemetry tracer the adaptive decorator streamed into.
	// Tracer() tolerates a nil bundle, so fig10 stays callable uninstrumented.
	series := tel.Tracer().Series("adaptive.gsplit")
	if len(series) == 0 {
		return
	}
	fmt.Printf("\nGSplit evolution over the run (%d updates, from the telemetry trace):\n", len(series))
	step := len(series) / 16
	if step < 1 {
		step = 1
	}
	fmt.Printf("%-8s %-14s %s\n", "update", "virtual time", "GSplit")
	lastPrinted := -1
	for i := 0; i < len(series); i += step {
		s := series[i]
		fmt.Printf("%-8d %12.3f s %8.4f\n", i, s.T, s.V)
		lastPrinted = i
	}
	if last := len(series) - 1; last != lastPrinted {
		s := series[last]
		fmt.Printf("%-8d %12.3f s %8.4f   (final)\n", last, s.T, s.V)
	}
}

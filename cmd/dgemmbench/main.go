// Command dgemmbench regenerates Figure 8 of the paper: hybrid DGEMM
// performance by matrix size on a single compute element for the five
// evaluated configurations (CPU, ACMLG, ACMLG+adaptive, ACMLG+pipe,
// ACMLG+both), and prints the average improvement factors the paper quotes
// (+14.64% adaptive, +7.61% pipe above N=8192, +22.19% combined).
// -trace writes the sweep's resource and split traces as Chrome trace-event
// JSON; -metrics dumps the telemetry registry after the sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tianhe/internal/bench"
	"tianhe/internal/experiments"
	"tianhe/internal/sweep"
	"tianhe/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	sizesFlag := flag.String("sizes", "", "comma-separated matrix sizes (default: the Figure 8 sweep)")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of the sweep to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metric dump after the sweep")
	verify := flag.Bool("verify", false, "append the ABFT checksum-verification overhead table (cost of soft-error protection by size)")
	par := flag.Int("par", 0, "worker count for the sweep (<=0: GOMAXPROCS); output is identical for every value")
	flag.Parse()

	var sizes []int
	if *sizesFlag != "" {
		for _, f := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "dgemmbench: invalid size %q\n", f)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
	}

	var tel *telemetry.Telemetry
	if *tracePath != "" || *metrics {
		tel = telemetry.New()
	}

	fmt.Println("Figure 8 — DGEMM performance by matrix size (single compute element)")
	fmt.Println()
	series := experiments.Fig8Instrumented(*seed, sizes, tel, sweep.Workers(*par))
	bench.Table(os.Stdout, "N", "GFLOPS", series...)
	fmt.Println()

	var acmlg, adaptive, pipe, both *bench.Series
	for _, s := range series {
		switch s.Name {
		case "ACMLG":
			acmlg = s
		case "ACMLG+adaptive":
			adaptive = s
		case "ACMLG+pipe":
			pipe = s
		case "ACMLG+both":
			both = s
		}
	}
	big := func(x float64) bool { return x > 8192 }
	fmt.Printf("adaptive mapping benefit (all sizes):      %+.2f%%   (paper: +14.64%%)\n",
		adaptive.GainOver(acmlg, nil)*100)
	fmt.Printf("pipeline benefit (N > 8192):               %+.2f%%   (paper: +7.61%%)\n",
		pipe.GainOver(acmlg, big)*100)
	fmt.Printf("combined benefit (N > 8192):               %+.2f%%   (paper: +22.19%%)\n",
		both.GainOver(acmlg, big)*100)

	if *verify {
		// The protection's price tag: the same Linpack-shaped workload with
		// every task checksum-verified, no corruption injected.
		vsizes := sizes
		if vsizes == nil {
			vsizes = []int{4864, 9728, 19456}
		}
		fmt.Println()
		fmt.Println("ABFT verification overhead (no corruption injected)")
		fmt.Printf("  %8s %14s %14s %10s\n", "N", "base s", "checks s", "overhead")
		for _, c := range experiments.ABFTOverhead(*seed, vsizes, sweep.Workers(*par)) {
			fmt.Printf("  %8d %14.3f %14.3f %+9.2f%%\n", c.N, c.BaseSeconds, c.VerifySeconds, c.OverheadPct)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			if err = tel.Trace.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgemmbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", tel.Trace.Len(), *tracePath)
	}
	if *metrics {
		fmt.Println()
		tel.Metrics.WriteText(os.Stdout)
	}
}

// Command cabinetbench regenerates Figure 11 of the paper: Linpack
// performance by process count within one cabinet, comparing the adaptive
// mapping against the Qilin-style trained mapping, plus the training-cost
// accounting of Section VI.C (two hours and 37 kWh per cabinet, 2960 kWh on
// the full 80-cabinet machine).
package main

import (
	"flag"
	"fmt"
	"os"

	"tianhe/internal/bench"
	"tianhe/internal/experiments"
	"tianhe/internal/perfmodel"
	"tianhe/internal/sweep"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	par := flag.Int("par", 0, "worker count for the process-count sweep (<=0: GOMAXPROCS); output is identical for every value")
	flag.Parse()

	fmt.Println("Figure 11 — performance by number of processes within a single cabinet")
	fmt.Println()
	ours, qilin := experiments.Fig11(*seed, nil, sweep.Workers(*par))
	bench.Table(os.Stdout, "processes", "GFLOPS", ours, qilin)
	fmt.Println()

	o, _ := ours.Y(64)
	q, _ := qilin.Y(64)
	fmt.Printf("adaptive advantage at 64 processes: %+.2f%%   (paper: +15.56%%)\n", (o/q-1)*100)
	fmt.Println()
	fmt.Printf("Qilin training cost: %.0f h at %.1f kW per cabinet = %.0f kWh/cabinet (paper: 37 kWh)\n",
		perfmodel.TrainingHours, perfmodel.CabinetPowerKW, perfmodel.TrainingEnergyKWh(1))
	fmt.Printf("on the full 80-cabinet configuration: %.0f kWh (paper: 2,960 kWh)\n",
		perfmodel.TrainingEnergyKWh(80))
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tianhe/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the testdata goldens from the current scheduler")

// The -golden task tables are the CI contract for the dataflow scheduler:
// any drift in placement, ordering, or booked times against the committed
// schedules is a diff, caught here and by `make graphgolden`.
func TestGoldenSchedules(t *testing.T) {
	for _, tc := range []struct {
		name   string
		args   []string
		golden string
	}{
		{"lu", []string{"-workload", "lu", "-golden"}, "lu.golden"},
		{"lu-hybrid", []string{"-workload", "lu", "-golden", "-hybrid"}, "lu-hybrid.golden"},
		{"stencil", []string{"-workload", "stencil", "-golden"}, "stencil.golden"},
		{"stencil-hybrid", []string{"-workload", "stencil", "-golden", "-hybrid"}, "stencil-hybrid.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tc.args); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s schedule drifted from the golden; regenerate deliberately with `go test ./cmd/graphtrace -update`\ngot:\n%s", tc.name, clip(buf.String()))
			}
		})
	}
}

func clip(s string) string {
	lines := strings.SplitN(s, "\n", 12)
	if len(lines) == 12 {
		lines[11] = "..."
	}
	return strings.Join(lines, "\n")
}

// TestGanttRenders checks the human-facing mode: one lane per device, busy
// percentages, and a makespan footer.
func TestGanttRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-workload", "lu", "-n", "1024", "-nb", "256"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graphtrace lu n=1024", "device", "gpu", "cpu0", "busy"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceExport writes the Chrome trace-event JSON and decodes it back.
func TestTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lu.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-workload", "lu", "-n", "1024", "-nb", "256", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("graphtrace wrote no trace file: %v", err)
	}
	defer f.Close()
	events, err := telemetry.ParseTrace(f)
	if err != nil {
		t.Fatalf("-trace output does not decode as Chrome trace-event JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("-trace output decoded to zero events")
	}
}

// TestBadWorkloadErrors keeps the flag surface honest.
func TestBadWorkloadErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-workload", "fft"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// Command graphtrace schedules a workload's task graph on a virtual element
// and prints the resulting schedule: a per-device ASCII Gantt chart, an
// optional Chrome trace-event JSON export (-trace out.json, loadable in
// Perfetto), and a canonical task table (-golden) whose byte form is the CI
// golden for the dataflow scheduler — any placement or ordering drift shows
// up as a diff. Workloads: the graph-expressed LU factorization (-workload
// lu, virtual topology at any size) and the 3-D Jacobi stencil sweep
// (-workload stencil); -hybrid arms the split CPU+GPU codelet bodies on
// either. -bench runs the monolithic-vs-graph comparison instead and writes
// the BENCH_graphlu.json perf-trajectory artifact, guarding it against a
// committed baseline with -baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tianhe/internal/element"
	"tianhe/internal/experiments"
	"tianhe/internal/hpl"
	"tianhe/internal/stencil"
	"tianhe/internal/taskgraph"
	"tianhe/internal/telemetry"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "graphtrace: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("graphtrace", flag.ContinueOnError)
	workload := fs.String("workload", "lu", "graph to schedule: lu or stencil")
	seed := fs.Uint64("seed", 2009, "element seed (jitter and placement are deterministic in it)")
	golden := fs.Bool("golden", false, "print the canonical task table instead of the Gantt chart")
	hybrid := fs.Bool("hybrid", false, "arm the split CPU+GPU codelet bodies (GSplit-driven hybrid variants)")
	tracePath := fs.String("trace", "", "write the schedule as Chrome trace-event JSON to this file")
	width := fs.Int("width", 96, "Gantt chart width in characters")

	// Bench flags (-bench ignores the workload flags and runs the
	// monolithic-vs-graph comparison at the Fig-6 size).
	bench := fs.Bool("bench", false, "run the graph-LU benchmark and write the BENCH_graphlu.json artifact")
	benchN := fs.Int("benchn", 0, "bench: matrix order (0 selects the Fig-6 size, 46080)")
	out := fs.String("o", "", "bench: write the benchmark artifact JSON to this file")
	baseline := fs.String("baseline", "", "bench: committed benchmark to guard against (errors on regression)")
	tolerance := fs.Float64("tolerance", 10, "bench: allowed per-mode GFLOPS regression in percent")
	par := fs.Int("par", 1, "bench: worker parallelism of the sweep (output is identical for every par)")

	// LU flags.
	n := fs.Int("n", 2048, "lu: matrix order")
	nb := fs.Int("nb", 256, "lu: blocking factor")
	lookahead := fs.Int("lookahead", 1, "lu: look-ahead depth (negative: unconstrained dataflow)")

	// Stencil flags.
	nx := fs.Int("nx", 256, "stencil: grid X extent")
	ny := fs.Int("ny", 256, "stencil: grid Y extent")
	nz := fs.Int("nz", 256, "stencil: grid Z extent")
	steps := fs.Int("steps", 4, "stencil: Jacobi time steps")
	blockz := fs.Int("blockz", 32, "stencil: Z-slab depth")

	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench {
		return runBench(w, *seed, *benchN, *par, *out, *baseline, *tolerance)
	}

	var tel *telemetry.Telemetry
	if *tracePath != "" {
		tel = telemetry.New()
	}
	el := element.New(element.Config{Seed: *seed, Virtual: true})
	if tel.Enabled() {
		el.Instrument(tel, *workload)
	}
	opts := taskgraph.Options{Telemetry: tel}

	var rep taskgraph.Report
	var title string
	suffix := ""
	if *hybrid {
		suffix = " hybrid"
	}
	switch *workload {
	case "lu":
		if *hybrid {
			// Cold-start priors so the first placements rank variants by the
			// perf model, matching GraphDgetrf's seeding.
			opts.RateSeeds = hpl.GraphRateSeeds(el, *nb)
		}
		g := hpl.BuildLUGraph(*n, nil, nil, el, nil,
			hpl.GraphOptions{NB: *nb, Lookahead: *lookahead, Hybrid: *hybrid})
		r, err := taskgraph.NewScheduler(el, opts).Run(g, 0)
		if err != nil {
			return err
		}
		rep = r
		title = fmt.Sprintf("lu n=%d nb=%d lookahead=%d%s", *n, *nb, *lookahead, suffix)
	case "stencil":
		s := stencil.NewVirtual(stencil.Config{
			NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, BlockZ: *blockz, Seed: *seed,
			Hybrid: *hybrid,
		})
		r, err := s.Run(el, opts)
		if err != nil {
			return err
		}
		rep = r
		title = fmt.Sprintf("stencil %dx%dx%d steps=%d blockz=%d%s", *nx, *ny, *nz, *steps, *blockz, suffix)
	default:
		return fmt.Errorf("unknown workload %q (lu or stencil)", *workload)
	}
	if rep.Stalled {
		return fmt.Errorf("schedule stalled: GPU context lost without a fallback")
	}

	if *golden {
		writeGolden(w, title, rep)
	} else {
		writeSummary(w, title, rep)
		fmt.Fprintln(w)
		writeGantt(w, rep, *width)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := tel.Trace.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %d trace events to %s\n", tel.Trace.Len(), *tracePath)
	}
	return nil
}

// runBench runs the monolithic-vs-graph benchmark, writes the artifact, and
// guards it against the committed baseline — the BENCH_graphlu.json
// counterpart of tianhed's serving benchmark.
func runBench(w io.Writer, seed uint64, n, par int, out, baseline string, tolerance float64) error {
	res := experiments.GraphLUBench(seed, n, par)
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-14s lookahead=%-2d %9.3f s %8.2f GFLOPS %+6.1f%%\n",
			c.Mode, c.Lookahead, c.Seconds, c.GFLOPS, c.GainPct)
	}
	if out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", out)
	}
	if baseline == "" {
		return nil
	}
	baseData, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base experiments.GraphLUBenchResult
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Schema != experiments.GraphLUBenchSchema {
		return fmt.Errorf("baseline schema %q, want %q", base.Schema, experiments.GraphLUBenchSchema)
	}
	if err := experiments.GraphLURegression(res, base, tolerance); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline %s: all modes within %.0f%%\n", baseline, tolerance)
	return nil
}

// writeGolden prints the canonical task table: one line per task in schedule
// order, fixed six-decimal virtual seconds. This byte form is the CI golden.
func writeGolden(w io.Writer, title string, rep taskgraph.Report) {
	fmt.Fprintf(w, "# graphtrace %s\n", title)
	fmt.Fprintf(w, "# tasks=%d gpu=%d cpu=%d hyb=%d makespan=%.6f\n",
		rep.Tasks, rep.TasksGPU, rep.TasksCPU, rep.TasksHyb, rep.Seconds())
	for _, ts := range rep.TaskSpans {
		fmt.Fprintf(w, "%s %s %s %.6f %.6f\n", ts.Name, ts.Codelet, ts.Device, ts.Start, ts.End)
	}
}

func writeSummary(w io.Writer, title string, rep taskgraph.Report) {
	fmt.Fprintf(w, "graphtrace %s\n", title)
	fmt.Fprintf(w, "  tasks    %d (%d gpu, %d cpu, %d hybrid)\n",
		rep.Tasks, rep.TasksGPU, rep.TasksCPU, rep.TasksHyb)
	fmt.Fprintf(w, "  makespan %.6f s virtual\n", rep.Seconds())
	fmt.Fprintf(w, "  rate     %.1f GFLOPS\n", rep.GFLOPS())
	fmt.Fprintf(w, "  traffic  %d B in, %d B out, %d B served from residency\n",
		rep.BytesIn, rep.BytesOut, rep.BytesSkipped)
}

// writeGantt renders one lane per device, tasks as bars over scaled virtual
// time. Overlapping bars on one lane merge; the lane's busy fraction follows.
func writeGantt(w io.Writer, rep taskgraph.Report, width int) {
	if len(rep.TaskSpans) == 0 || rep.Seconds() <= 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	if width < 20 {
		width = 20
	}
	lanes := map[string][]taskgraph.TaskSpan{}
	for _, ts := range rep.TaskSpans {
		lanes[ts.Device] = append(lanes[ts.Device], ts)
	}
	names := make([]string, 0, len(lanes))
	for d := range lanes {
		names = append(names, d)
	}
	sort.Strings(names)
	t0, t1 := float64(rep.Start), float64(rep.End)
	scale := float64(width) / (t1 - t0)
	fmt.Fprintf(w, "%-6s |%s| busy\n", "device", strings.Repeat("-", width))
	for _, d := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		busy := 0.0
		for _, ts := range lanes[d] {
			busy += float64(ts.End - ts.Start)
			lo := int((float64(ts.Start) - t0) * scale)
			hi := int((float64(ts.End) - t0) * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(w, "%-6s |%s| %4.0f%%\n", d, row, 100*busy/(t1-t0))
	}
	fmt.Fprintf(w, "%-6s 0%ss=%.4f\n", "", strings.Repeat(" ", width-len(fmt.Sprintf("s=%.4f", t1-t0))), t1-t0)
}

// Command scalebench regenerates Figures 12 and 13 of the paper: Linpack
// performance scaling from one cabinet (8.02 TFLOPS) to the full 80-cabinet
// TianHe-1 (563.1 TFLOPS, 87.76% scaling efficiency), and — with -progress —
// the cumulative-performance-versus-progress curve of the full-machine run,
// including the endgame drop the paper highlights (604.74 TFLOPS at 97.17%
// progress falling to 563.1 at completion).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tianhe/internal/bench"
	"tianhe/internal/experiments"
	"tianhe/internal/sweep"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	progress := flag.Bool("progress", false, "print Figure 13 (full-machine progress curve) instead of Figure 12")
	cabinetsFlag := flag.String("cabinets", "", "comma-separated cabinet counts (default: the Figure 12 sweep)")
	parFlag := flag.Int("par", 0, "worker count (<=0: GOMAXPROCS); output is identical for every value")
	flag.Parse()
	par := sweep.Workers(*parFlag)

	var cabinets []int
	if *cabinetsFlag != "" {
		for _, f := range strings.Split(*cabinetsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "scalebench: invalid cabinet count %q\n", f)
				os.Exit(2)
			}
			cabinets = append(cabinets, v)
		}
	}

	if *progress {
		fig13(*seed, par)
		return
	}

	fmt.Println("Figure 12 — performance scaling by cabinets (GPU down-clocked to 575 MHz)")
	fmt.Println()
	s := experiments.Fig12(*seed, cabinets, par)
	bench.Table(os.Stdout, "cabinets", "TFLOPS", s)
	fmt.Println()
	one, ok1 := s.Y(1)
	eighty, ok80 := s.Y(80)
	if !ok1 || !ok80 {
		return // custom -cabinets without the 1/80 summary points
	}
	fmt.Printf("one cabinet:        %7.2f TFLOPS   (paper: 8.02)\n", one)
	fmt.Printf("80 cabinets:        %7.2f TFLOPS   (paper: 563.1)\n", eighty)
	fmt.Printf("scaling efficiency: %7.2f %%        (paper: 87.76%%)\n", eighty/(80*one)*100)
}

func fig13(seed uint64, par int) {
	fmt.Println("Figure 13 — Linpack progress on the full TianHe-1 configuration")
	fmt.Println()
	pts := experiments.Fig13(seed, par)
	marks := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.9717, 0.99, 1.0}
	fmt.Printf("%-12s %s\n", "progress", "cumulative TFLOPS")
	mi := 0
	for _, p := range pts {
		for mi < len(marks) && p.Frac >= marks[mi] {
			fmt.Printf("%9.2f %%  %10.2f\n", p.Frac*100, p.CumTFLOPS)
			mi++
		}
	}
	final := pts[len(pts)-1].CumTFLOPS
	var at97 float64
	for _, p := range pts {
		if p.Frac >= 0.9717 {
			at97 = p.CumTFLOPS
			break
		}
	}
	fmt.Println()
	fmt.Printf("at 97.17%% progress: %7.2f TFLOPS   (paper: 604.74)\n", at97)
	fmt.Printf("final:              %7.2f TFLOPS   (paper: 563.1)\n", final)
	fmt.Printf("endgame drop:       %7.2f TFLOPS   (paper: ~41.6)\n", at97-final)
}

// Command hplrun executes the real (residual-checked) Linpack benchmark:
// either on one process with the serial blocked LU, or distributed across
// several simulated compute elements over the in-process MPI substrate.
// Unlike the *bench tools, everything here actually computes; sizes are
// therefore laptop-scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"tianhe"
	"tianhe/internal/abft"
	"tianhe/internal/blas"
	"tianhe/internal/hpl"
	"tianhe/internal/matrix"
	"tianhe/internal/sweep"
)

func main() {
	n := flag.Int("n", 512, "problem order N")
	nb := flag.Int("nb", 64, "blocking factor NB")
	ranks := flag.Int("ranks", 1, "process count (>1 runs the distributed solver)")
	seed := flag.Uint64("seed", 1, "matrix generator seed")
	variant := flag.String("variant", "ACMLG+both", "compute-element configuration for the distributed run")
	refine := flag.Bool("refine", false, "apply iterative refinement and report the condition estimate (serial runs)")
	verify := flag.Bool("verify", false, "run every trailing update through ABFT checksum verification (serial runs)")
	sdcProb := flag.Float64("sdc", 0, "with -verify, probability per update of injecting a real bit flip (detected and repaired before the solve)")
	gridP := flag.Int("p", 0, "process grid rows: with -q, run the 2D block-cyclic solver with look-ahead")
	gridQ := flag.Int("q", 0, "process grid columns (see -p)")
	parFlag := flag.Int("par", 0, "DGEMM worker count (<=0: GOMAXPROCS); results are identical for every value")
	flag.Parse()
	par := sweep.Workers(*parFlag)

	if *gridP > 0 && *gridQ > 0 {
		v := lookupVariant(*variant)
		res, err := tianhe.SolveDistributed2D(tianhe.Distributed2DConfig{
			N: *n, NB: *nb, P: *gridP, Q: *gridQ, Seed: *seed,
			Variant: v, Lookahead: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hplrun:", err)
			os.Exit(1)
		}
		fmt.Printf("N=%d NB=%d grid=%dx%d variant=%s (2D block-cyclic, look-ahead)\n",
			*n, *nb, *gridP, *gridQ, v)
		fmt.Printf("residual=%.4g (threshold %g)  PASSED\n", res.Residual, hpl.ResidualThreshold)
		fmt.Printf("virtual makespan: %.4f s  ->  %.2f GFLOPS (virtual)\n", res.Seconds, res.GFLOPS)
		return
	}

	if *ranks <= 1 {
		if *refine {
			refinedRun(*n, *nb, *seed, par)
			return
		}
		if *verify {
			verifiedRun(*n, *nb, *seed, *sdcProb)
			return
		}
		res, err := tianhe.RunLinpack(*n, *seed, tianhe.LinpackOptions{NB: *nb, Workers: par})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hplrun:", err)
			os.Exit(1)
		}
		fmt.Printf("N=%d NB=%d  residual=%.4g  (threshold %g)  PASSED\n",
			res.N, res.NB, res.Residual, hpl.ResidualThreshold)
		fmt.Printf("credited flops: %.3g\n", res.Flops)
		return
	}

	v := lookupVariant(*variant)
	res, err := tianhe.SolveDistributed(tianhe.DistributedConfig{
		N: *n, NB: *nb, Ranks: *ranks, Seed: *seed, Variant: v,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hplrun:", err)
		os.Exit(1)
	}
	fmt.Printf("N=%d NB=%d ranks=%d variant=%s\n", *n, *nb, *ranks, v)
	fmt.Printf("residual=%.4g (threshold %g)  PASSED\n", res.Residual, hpl.ResidualThreshold)
	fmt.Printf("virtual makespan: %.4f s  ->  %.2f GFLOPS (virtual)\n", res.Seconds, res.GFLOPS)
}

// lookupVariant resolves a configuration name or exits with the choices.
func lookupVariant(name string) tianhe.Variant {
	for _, cand := range tianhe.Variants {
		if cand.String() == name {
			return cand
		}
	}
	fmt.Fprintf(os.Stderr, "hplrun: unknown variant %q (one of", name)
	for _, cand := range tianhe.Variants {
		fmt.Fprintf(os.Stderr, " %q", cand.String())
	}
	fmt.Fprintln(os.Stderr, ")")
	os.Exit(2)
	return 0
}

// verifiedRun executes the serial benchmark with every trailing update
// wrapped in Huang-Abraham checksum verification, optionally corrupting
// updates with real bit flips; the counters prove what was detected and
// repaired before the residual check ever saw the data.
func verifiedRun(n, nb int, seed uint64, sdcProb float64) {
	v := abft.NewVerifier(func(alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, alpha, a, b, beta, c)
	})
	if sdcProb > 0 {
		v.SetInjector(abft.NewBitFlipper(seed, sdcProb))
	}
	res, err := hpl.Run(n, seed, hpl.Options{NB: nb, Gemm: v.Gemm})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hplrun:", err)
		os.Exit(1)
	}
	fmt.Printf("N=%d NB=%d  residual=%.4g  (threshold %g)  PASSED\n",
		res.N, res.NB, res.Residual, hpl.ResidualThreshold)
	fmt.Printf("abft: %d updates verified, %d corrupted, %d detected, %d corrected in place, %d recomputed\n",
		v.Updates, v.Injected, v.Detected, v.Corrected, v.Recomputed)
}

// refinedRun solves, refines the solution with the LU factors, and reports
// the condition estimate alongside the residuals.
func refinedRun(n, nb int, seed uint64, par int) {
	a, b := hpl.Generate(n, seed)
	lu := a.Clone()
	ipiv := make([]int, n)
	if err := hpl.Dgetrf(lu, ipiv, hpl.Options{NB: nb, Workers: par}); err != nil {
		fmt.Fprintln(os.Stderr, "hplrun:", err)
		os.Exit(1)
	}
	x := append([]float64(nil), b...)
	hpl.SolveFactored(lu, ipiv, x)
	before := hpl.ScaledResidual(a, x, b)
	steps, _ := tianhe.RefineSolution(a, lu, ipiv, b, x, 5)
	after := hpl.ScaledResidual(a, x, b)
	rcond := tianhe.EstimateRcond(lu, ipiv, a.NormOne())
	fmt.Printf("N=%d NB=%d\n", n, nb)
	fmt.Printf("scaled residual: %.4g -> %.4g after %d refinement step(s)\n", before, after, steps)
	fmt.Printf("estimated rcond: %.4g (condition number ~%.3g)\n", rcond, 1/rcond)
}

package tianhe_test

// BenchmarkFaultHookOverhead measures what the fault-injection hooks cost
// on the hybrid DGEMM path when no faults are scheduled. The three
// sub-benchmarks run the identical simulated workload: Baseline never
// installs a hook (the nil fast path every production run takes), Empty
// attaches an injector with an empty event schedule to every hook (GPU
// health, queue stretch, CPU throttle), and Scenario attaches a real
// degraded-gpu schedule. Baseline and Empty must produce identical virtual
// results, and Empty's wall-clock cost must stay within noise of Baseline —
// the nil-hook hot path is one pointer check per booking.

import (
	"testing"

	"tianhe/internal/adaptive"
	"tianhe/internal/element"
	"tianhe/internal/experiments"
	"tianhe/internal/fault"
	"tianhe/internal/hybrid"
)

// faultWorkload runs three hybrid DGEMMs at N = 12288 on a fresh
// ACMLG+both element with the given injector attached (nil = no hooks).
func faultWorkload(in *fault.Injector) float64 {
	el := element.New(element.Config{Seed: experiments.DefaultSeed, Virtual: true})
	fault.Attach(in, el)
	work := 2.0 * 12288 * 12288 * 12288
	part := adaptive.NewAdaptive(64, work, el.InitialGSplit(), el.CPU.NumCores())
	run := hybrid.New(el, element.ACMLGBoth, part)
	var g float64
	for j := 0; j < 3; j++ {
		g = run.GemmVirtual(12288, 12288, 12288, 1, el.Now()).GFLOPS()
	}
	return g
}

func BenchmarkFaultHookOverhead(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			last = faultWorkload(nil)
		}
		b.ReportMetric(last, "vGFLOPS")
	})
	b.Run("Empty", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			last = faultWorkload(fault.New(experiments.DefaultSeed))
		}
		b.ReportMetric(last, "vGFLOPS")
	})
	b.Run("Scenario", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			in, err := fault.NewScenario("degraded-gpu", 3, experiments.DefaultSeed)
			if err != nil {
				b.Fatal(err)
			}
			last = faultWorkload(in)
		}
		b.ReportMetric(last, "vGFLOPS")
	})
}

// TestEmptyInjectorIsObservationallyNil proves the hook seams carry no
// virtual-time cost: an attached empty injector must reproduce the
// hookless run bit for bit.
func TestEmptyInjectorIsObservationallyNil(t *testing.T) {
	var reports [2]hybrid.Report
	for i, in := range []*fault.Injector{nil, fault.New(experiments.DefaultSeed)} {
		el := element.New(element.Config{Seed: experiments.DefaultSeed, Virtual: true})
		fault.Attach(in, el)
		work := 2.0 * 8192 * 8192 * 8192
		part := adaptive.NewAdaptive(64, work, el.InitialGSplit(), el.CPU.NumCores())
		run := hybrid.New(el, element.ACMLGBoth, part)
		var rep hybrid.Report
		for j := 0; j < 4; j++ {
			rep = run.GemmVirtual(8192, 8192, 8192, 1, el.Now())
		}
		reports[i] = rep
	}
	if reports[0].End != reports[1].End || reports[0].GSplit != reports[1].GSplit {
		t.Fatalf("empty injector moved virtual time: %+v vs %+v", reports[0], reports[1])
	}
}
